//! The daemon: accept loop, connection workers, and the three surfaces.
//!
//! Thread-per-connection over the exec crate's bounded [`ServicePool`]:
//! the accept loop hands each socket to a long-lived worker, and when the
//! pool's queue is full it writes a canned 503 inline and moves on — the
//! bottom rung of the backpressure ladder. The middle rung is the
//! `/submit` in-flight gate (429); the top is the admission plane itself
//! (power/node exhaustion, 503). Request workers never touch the simulated
//! platform: `/metrics` reads the observability registry, `/stream` reads
//! published snapshots, `/submit` locks only the admission struct.

use crate::admission::{Admission, AppClass, Reject, SubmitRequest};
use crate::fleet::{eps_of, Fleet, FleetConfig};
use crate::http::{self, ParseError, Request, Response};
use crate::json::{self, Value};
use pmstack_exec::ServicePool;
use pmstack_obs::StaticCounter;
use pmstack_simhw::{quartz_spec, PowerModel, Watts};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

static REQUESTS: StaticCounter = StaticCounter::new("pmstackd.http.requests");
static RESP_2XX: StaticCounter = StaticCounter::new("pmstackd.http.responses_2xx");
static RESP_4XX: StaticCounter = StaticCounter::new("pmstackd.http.responses_4xx");
static RESP_5XX: StaticCounter = StaticCounter::new("pmstackd.http.responses_5xx");
static SHED: StaticCounter = StaticCounter::new("pmstackd.submit.shed");
static CONN_REJECTED: StaticCounter = StaticCounter::new("pmstackd.conn.rejected");
static CONN_ACCEPTED: StaticCounter = StaticCounter::new("pmstackd.conn.accepted");
static STREAM_FRAMES: StaticCounter = StaticCounter::new("pmstackd.stream.frames");

/// Most frames one `/stream` request may ask for.
pub const MAX_STREAM_FRAMES: u64 = 10_000;
/// Longest `/stream` inter-frame interval accepted, milliseconds.
pub const MAX_STREAM_INTERVAL_MS: u64 = 10_000;

/// Everything the daemon needs to start.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Simulated fleet size.
    pub hosts: usize,
    /// System power budget per host, watts.
    pub budget_per_host_w: f64,
    /// Connection workers in the service pool.
    pub workers: usize,
    /// Bounded connection-queue capacity (overflow → inline 503).
    pub conn_capacity: usize,
    /// Concurrent `/submit` requests admitted before shedding 429s.
    pub max_inflight: usize,
    /// Step-loop sleep between ticks, milliseconds.
    pub tick_ms: u64,
    /// Ticks an admitted job holds its reservation.
    pub job_ttl_ticks: u64,
    /// Largest per-job node count accepted.
    pub max_nodes_per_job: usize,
    /// Override the bank's segment size (None = default).
    pub segment_hosts: Option<usize>,
    /// Node-class layout: `(name, host count)` pairs laid out as
    /// contiguous id segments in order. Non-empty layouts must sum to
    /// `hosts` exactly; empty keeps the fleet unclassed and makes any
    /// `"class"` field in `/submit` a 400.
    pub class_layout: Vec<(String, usize)>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            port: 0,
            hosts: 1024,
            budget_per_host_w: 150.0,
            workers: 8,
            conn_capacity: 128,
            max_inflight: 32,
            tick_ms: 20,
            job_ttl_ticks: 25,
            max_nodes_per_job: 64,
            segment_hosts: None,
            class_layout: Vec::new(),
        }
    }
}

struct ServerCtx {
    admission: Arc<Mutex<Admission>>,
    fleet: Fleet,
    inflight: AtomicUsize,
    max_inflight: usize,
    max_nodes_per_job: usize,
    class_names: Vec<String>,
    tick_ms: u64,
    frames_served: AtomicU64,
}

/// A running daemon.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    ctx: Arc<ServerCtx>,
}

impl Daemon {
    /// Bind, build the fleet + admission plane, and start serving.
    pub fn spawn(config: DaemonConfig) -> io::Result<Self> {
        pmstack_obs::enable();
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;

        let model = PowerModel::new(quartz_spec()).expect("quartz spec is valid");
        let host_eps: Vec<f64> = (0..config.hosts).map(eps_of).collect();
        let admission = Arc::new(Mutex::new(
            Admission::new(
                model,
                host_eps,
                Watts(config.budget_per_host_w * config.hosts as f64),
                config.job_ttl_ticks,
                config.max_nodes_per_job,
            )
            .with_classes(&config.class_layout),
        ));
        let fleet = Fleet::spawn(
            FleetConfig {
                hosts: config.hosts,
                tick_interval: Duration::from_millis(config.tick_ms),
                segment_hosts: config.segment_hosts,
            },
            Arc::clone(&admission),
        );

        let ctx = Arc::new(ServerCtx {
            admission,
            fleet,
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight,
            max_nodes_per_job: config.max_nodes_per_job,
            class_names: config
                .class_layout
                .iter()
                .map(|(name, _)| name.clone())
                .collect(),
            tick_ms: config.tick_ms,
            frames_served: AtomicU64::new(0),
        });

        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            let workers = config.workers.max(1);
            let capacity = config.conn_capacity;
            std::thread::Builder::new()
                .name("pmstackd-accept".into())
                .spawn(move || {
                    let pool = ServicePool::new(workers, capacity);
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // A duplicate handle survives the queued closure
                        // being dropped, so a full queue can still get a
                        // canned refusal instead of a bare reset.
                        let reject_copy = stream.try_clone().ok();
                        let ctx = Arc::clone(&ctx);
                        let job = Box::new(move || handle_connection(stream, &ctx));
                        if pool.try_execute(job).is_ok() {
                            CONN_ACCEPTED.inc();
                        } else {
                            // Bottom rung of the ladder: the connection
                            // queue is full. Refuse inline; the accept loop
                            // itself never blocks on a slow worker.
                            CONN_REJECTED.inc();
                            count_status(503);
                            if let Some(mut s) = reject_copy {
                                let _ = Response::json(
                                    503,
                                    "{\"error\":\"connection queue full, retry later\"}\n",
                                )
                                .write_to(&mut s, true);
                            }
                        }
                    }
                    pool.shutdown();
                })
                .expect("spawn accept thread")
        };

        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            ctx,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission plane (tests assert invariants through it).
    pub fn admission(&self) -> Arc<Mutex<Admission>> {
        Arc::clone(&self.ctx.admission)
    }

    /// Stop accepting, join the workers and the step loop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Decrements the in-flight gate on drop, so early returns cannot leak a
/// slot.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_connection(stream: TcpStream, ctx: &ServerCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(req) => {
                REQUESTS.inc();
                let close = !req.keep_alive();
                if serve_request(&req, &mut writer, close, ctx).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(ParseError::Eof) => return,
            Err(ParseError::Bad(msg)) => {
                respond_error(&mut writer, 400, &msg);
                return;
            }
            Err(ParseError::BodyTooLarge(len)) => {
                respond_error(
                    &mut writer,
                    413,
                    &format!("body of {len} bytes exceeds {}", http::MAX_BODY_BYTES),
                );
                return;
            }
            Err(ParseError::HeadersTooLarge) => {
                respond_error(&mut writer, 431, "header block too large");
                return;
            }
            Err(ParseError::Io(_)) => return,
        }
    }
}

fn count_status(status: u16) {
    match status {
        200..=299 => RESP_2XX.inc(),
        400..=499 => RESP_4XX.inc(),
        _ => RESP_5XX.inc(),
    }
}

fn respond_error(out: &mut impl Write, status: u16, msg: &str) {
    count_status(status);
    let body = format!("{{\"error\":\"{}\"}}\n", json::escape(msg));
    let _ = Response::json(status, body).write_to(out, true);
}

fn serve_request(
    req: &Request,
    out: &mut BufWriter<TcpStream>,
    close: bool,
    ctx: &ServerCtx,
) -> io::Result<()> {
    // `/stream` writes its own chunked framing; everything else is a plain
    // fixed-length response.
    if req.path == "/stream" {
        return match req.method.as_str() {
            "GET" => serve_stream(req, out, close, ctx),
            _ => write_plain(out, method_not_allowed("GET"), close),
        };
    }
    let response = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => serve_metrics(req),
        ("POST", "/submit") => serve_submit(req, ctx),
        ("GET", "/healthz") => serve_healthz(ctx),
        ("GET", "/") => Response::text(
            200,
            "pmstackd: GET /metrics | GET /stream?frames=N&interval_ms=M | \
             POST /submit {\"app\",\"nodes\",\"policy\"[,\"class\"]} | GET /healthz\n",
        ),
        (_, "/metrics" | "/healthz" | "/") => method_not_allowed("GET"),
        (_, "/submit") => method_not_allowed("POST"),
        _ => Response::json(404, "{\"error\":\"no such endpoint\"}\n"),
    };
    write_plain(out, response, close)
}

fn method_not_allowed(allow: &'static str) -> Response {
    let mut resp = Response::json(405, "{\"error\":\"method not allowed\"}\n");
    resp.extra_headers
        .push(("Allow".to_string(), allow.to_string()));
    resp
}

fn write_plain(out: &mut impl Write, response: Response, close: bool) -> io::Result<()> {
    count_status(response.status);
    response.write_to(out, close)
}

fn serve_metrics(req: &Request) -> Response {
    let format = req.query_param("format").unwrap_or("prometheus");
    let Some(exporter) = pmstack_obs::exporter(format) else {
        return Response::json(
            400,
            format!(
                "{{\"error\":\"unknown format {}; expected one of {}\"}}\n",
                json::escape(format),
                pmstack_obs::EXPORTER_NAMES.join(", ")
            ),
        );
    };
    let snap = pmstack_obs::snapshot();
    Response::text(200, exporter.render(&snap)).with_content_type(exporter.content_type())
}

fn serve_healthz(ctx: &ServerCtx) -> Response {
    let snap = ctx.fleet.latest();
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"hosts\":{},\"alive\":{},\"elapsed_s\":{:.6},\
             \"steady\":{}}}\n",
            snap.hosts, snap.alive, snap.elapsed_s, snap.steady
        ),
    )
}

fn serve_stream(
    req: &Request,
    out: &mut BufWriter<TcpStream>,
    close: bool,
    ctx: &ServerCtx,
) -> io::Result<()> {
    let frames = match parse_u64_param(req, "frames", 1, 1, MAX_STREAM_FRAMES) {
        Ok(v) => v,
        Err(resp) => return write_plain(out, resp, close),
    };
    let interval_ms =
        match parse_u64_param(req, "interval_ms", ctx.tick_ms, 0, MAX_STREAM_INTERVAL_MS) {
            Ok(v) => v,
            Err(resp) => return write_plain(out, resp, close),
        };
    count_status(200);
    http::start_chunked(out, 200, "application/json", close)?;
    for frame in 0..frames {
        if frame > 0 && interval_ms > 0 {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        let tick = ctx.frames_served.fetch_add(1, Ordering::AcqRel);
        let snap = ctx.fleet.latest();
        let mut line = Fleet::snapshot_json(&snap, tick);
        line.push('\n');
        STREAM_FRAMES.inc();
        http::write_chunk(out, line.as_bytes())?;
    }
    http::finish_chunked(out)
}

fn parse_u64_param(
    req: &Request,
    name: &str,
    default: u64,
    min: u64,
    max: u64,
) -> Result<u64, Response> {
    let Some(raw) = req.query_param(name) else {
        return Ok(default);
    };
    match raw.parse::<u64>() {
        Ok(v) if (min..=max).contains(&v) => Ok(v),
        _ => Err(Response::json(
            400,
            format!(
                "{{\"error\":\"{} must be an integer in [{}, {}], got {}\"}}\n",
                name,
                min,
                max,
                json::escape(raw)
            ),
        )),
    }
}

fn serve_submit(req: &Request, ctx: &ServerCtx) -> Response {
    // Middle rung: bounded concurrent admissions. Everything past this
    // check is covered by the guard's decrement-on-drop.
    if ctx.inflight.fetch_add(1, Ordering::AcqRel) >= ctx.max_inflight {
        ctx.inflight.fetch_sub(1, Ordering::AcqRel);
        SHED.inc();
        count_status(429);
        return Response::json(429, "{\"error\":\"admission queue full, retry later\"}\n");
    }
    let _guard = InflightGuard(&ctx.inflight);

    let parsed = match parse_submit_body(&req.body, ctx.max_nodes_per_job, &ctx.class_names) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return Response::json(400, format!("{{\"error\":\"{}\"}}\n", json::escape(&msg)))
        }
    };
    let decision = ctx
        .admission
        .lock()
        .expect("admission lock")
        .submit(&parsed);
    match decision {
        Ok(grant) => {
            let nodes: Vec<String> = grant.nodes.iter().map(|n| n.0.to_string()).collect();
            let caps: Vec<String> = grant
                .caps
                .iter()
                .map(|c| format!("{:.1}", c.value()))
                .collect();
            let class = match parsed.class {
                Some(c) => format!("\"class\":\"{}\",", json::escape(&ctx.class_names[c])),
                None => String::new(),
            };
            Response::json(
                200,
                format!(
                    "{{\"job\":\"{}\",\"app\":\"{}\",{}\"policy\":\"{}\",\
                     \"granted_w\":{:.1},\"want_w\":{:.1},\"degraded\":{},\
                     \"ttl_ticks\":{},\"nodes\":[{}],\"caps_w\":[{}]}}\n",
                    grant.job,
                    parsed.app.name(),
                    class,
                    parsed.policy,
                    grant.granted.value(),
                    grant.want.value(),
                    grant.degraded,
                    grant.ttl_ticks,
                    nodes.join(","),
                    caps.join(",")
                ),
            )
        }
        Err(Reject::NoNodes { free }) => Response::json(
            503,
            format!("{{\"error\":\"not enough free nodes\",\"free_nodes\":{free}}}\n"),
        ),
        Err(Reject::NoPower { available, floor }) => Response::json(
            503,
            format!(
                "{{\"error\":\"power budget exhausted\",\"available_w\":{:.1},\
                 \"floor_w\":{:.1}}}\n",
                available.value(),
                floor.value()
            ),
        ),
    }
}

fn parse_submit_body(
    body: &[u8],
    max_nodes: usize,
    classes: &[String],
) -> Result<SubmitRequest, String> {
    let value = json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Value::Obj(_) = &value else {
        return Err("body must be a JSON object".into());
    };
    let app_name = value
        .get("app")
        .and_then(Value::as_str)
        .ok_or("missing string field \"app\"")?;
    let app = AppClass::parse(app_name).ok_or_else(|| {
        format!(
            "unknown app class {:?}; expected one of {}",
            app_name,
            AppClass::NAMES.join(", ")
        )
    })?;
    let nodes_raw = value
        .get("nodes")
        .and_then(Value::as_f64)
        .ok_or("missing numeric field \"nodes\"")?;
    if nodes_raw.fract() != 0.0 || nodes_raw < 1.0 || nodes_raw > max_nodes as f64 {
        return Err(format!(
            "nodes must be an integer in [1, {max_nodes}], got {nodes_raw}"
        ));
    }
    let policy_name = value
        .get("policy")
        .and_then(Value::as_str)
        .ok_or("missing string field \"policy\"")?;
    let policy = crate::admission::parse_policy(policy_name)
        .ok_or_else(|| format!("unknown policy {policy_name:?}"))?;
    // The node-class preference is optional; when present it must name a
    // configured class (an unclassed fleet accepts none).
    let class = match value.get("class") {
        None => None,
        Some(v) => {
            let name = v.as_str().ok_or("field \"class\" must be a string")?;
            let idx = classes
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    if classes.is_empty() {
                        format!("unknown node class {name:?}; this fleet has no node classes")
                    } else {
                        format!(
                            "unknown node class {:?}; expected one of {}",
                            name,
                            classes.join(", ")
                        )
                    }
                })?;
            Some(idx)
        }
    };
    Ok(SubmitRequest {
        app,
        nodes: nodes_raw as usize,
        policy,
        class,
    })
}
