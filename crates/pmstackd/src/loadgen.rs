//! Closed-loop load generator for the serving plane.
//!
//! `--concurrency` worker threads each hold one keep-alive connection and
//! issue `POST /submit` requests back to back until the shared request
//! budget is spent. Every response is awaited before the next request goes
//! out (closed loop: measured latency includes server queueing), and every
//! latency sample is kept, so the percentiles are exact rather than
//! histogram-bucketed.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenParams {
    /// Daemon address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Total requests across all workers.
    pub requests: usize,
    /// Concurrent keep-alive connections.
    pub concurrency: usize,
    /// JSON body to post.
    pub body: String,
}

impl LoadgenParams {
    /// The default submit body: a small balanced job under the paper's
    /// headline policy.
    pub fn default_body() -> String {
        "{\"app\":\"balanced\",\"nodes\":4,\"policy\":\"mixedadaptive\"}".to_string()
    }
}

/// Aggregated result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: usize,
    /// Concurrency used.
    pub concurrency: usize,
    /// 200 responses (admitted).
    pub ok: usize,
    /// 429 responses (shed by the in-flight gate).
    pub shed: usize,
    /// 503 responses (saturated: power, nodes, or connection queue).
    pub unavailable: usize,
    /// Other statuses and transport failures.
    pub errors: usize,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub rps: f64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest request, milliseconds.
    pub max_ms: f64,
}

struct WorkerStats {
    ok: usize,
    shed: usize,
    unavailable: usize,
    errors: usize,
    latencies_ns: Vec<u64>,
}

/// One worker's keep-alive connection; reconnects when the server closes
/// it (e.g. after a 503 with `Connection: close`).
struct Conn {
    addr: String,
    stream: Option<BufReader<TcpStream>>,
}

impl Conn {
    fn ensure(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(10)))?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Send one request and read the full response. Returns the status and
    /// whether the server will close the connection. A stale keep-alive
    /// socket (server closed between requests) gets one fresh-socket retry.
    fn roundtrip(&mut self, raw_request: &[u8]) -> io::Result<(u16, bool)> {
        for attempt in 0..2 {
            let result = Self::attempt(self.ensure()?, raw_request);
            match result {
                Ok(Some((status, close))) => {
                    if close {
                        self.stream = None;
                    }
                    return Ok((status, close));
                }
                Ok(None) => self.stream = None,
                Err(e)
                    if attempt == 0
                        && matches!(
                            e.kind(),
                            io::ErrorKind::BrokenPipe
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::UnexpectedEof
                        ) =>
                {
                    self.stream = None;
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no response"))
    }

    /// One request/response exchange; `Ok(None)` means the server closed
    /// the socket before sending a status line.
    fn attempt(
        reader: &mut BufReader<TcpStream>,
        raw_request: &[u8],
    ) -> io::Result<Option<(u16, bool)>> {
        reader.get_mut().write_all(raw_request)?;
        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Ok(None);
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(Some((status, close)))
    }
}

/// Run the generator against a live daemon.
pub fn run_loadgen(params: &LoadgenParams) -> io::Result<LoadgenReport> {
    assert!(params.requests >= 1 && params.concurrency >= 1);
    let raw_request = format!(
        "POST /submit HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        params.addr,
        params.body.len(),
        params.body
    )
    .into_bytes();

    // Smoke one request first so a dead daemon is an error, not a report
    // full of failures.
    let mut probe = Conn {
        addr: params.addr.clone(),
        stream: None,
    };
    probe.roundtrip(&raw_request)?;
    drop(probe);

    let remaining = Arc::new(AtomicUsize::new(params.requests));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(params.concurrency);
    for _ in 0..params.concurrency {
        let remaining = Arc::clone(&remaining);
        let raw_request = raw_request.clone();
        let addr = params.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut stats = WorkerStats {
                ok: 0,
                shed: 0,
                unavailable: 0,
                errors: 0,
                latencies_ns: Vec::with_capacity(1024),
            };
            let mut conn = Conn { addr, stream: None };
            loop {
                // Claim one unit of the shared budget (closed loop).
                if remaining
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                    .is_err()
                {
                    break;
                }
                let sent = Instant::now();
                match conn.roundtrip(&raw_request) {
                    Ok((status, _)) => {
                        stats.latencies_ns.push(sent.elapsed().as_nanos() as u64);
                        match status {
                            200 => stats.ok += 1,
                            429 => stats.shed += 1,
                            503 => stats.unavailable += 1,
                            _ => stats.errors += 1,
                        }
                    }
                    Err(_) => {
                        stats.errors += 1;
                        conn.stream = None;
                    }
                }
            }
            stats
        }));
    }

    let mut ok = 0;
    let mut shed = 0;
    let mut unavailable = 0;
    let mut errors = 0;
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(params.requests);
    for handle in handles {
        let stats = handle.join().expect("loadgen worker panicked");
        ok += stats.ok;
        shed += stats.shed;
        unavailable += stats.unavailable;
        errors += stats.errors;
        latencies_ns.extend(stats.latencies_ns);
    }
    let wall_secs = start.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((latencies_ns.len() as f64 * p).ceil() as usize).clamp(1, latencies_ns.len());
        latencies_ns[rank - 1] as f64 / 1e6
    };
    let completed = ok + shed + unavailable;
    Ok(LoadgenReport {
        requests: params.requests,
        concurrency: params.concurrency,
        ok,
        shed,
        unavailable,
        errors,
        wall_secs,
        rps: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
        max_ms: latencies_ns.last().map_or(0.0, |&n| n as f64 / 1e6),
    })
}

/// Render the report for stdout.
pub fn render(report: &LoadgenReport) -> String {
    format!(
        "LOADGEN: {} requests, {} connections\n\
         outcome: {} admitted (200), {} shed (429), {} saturated (503), {} errors\n\
         throughput: {:.0} req/s over {:.3}s\n\
         latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
        report.requests,
        report.concurrency,
        report.ok,
        report.shed,
        report.unavailable,
        report.errors,
        report.rps,
        report.wall_secs,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms,
        report.max_ms,
    )
}

/// Serialize the report as the BENCH_serve.json document.
pub fn to_bench_json(report: &LoadgenReport) -> String {
    format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"requests\": {},\n  \
         \"concurrency\": {},\n  \"ok\": {},\n  \"shed\": {},\n  \
         \"unavailable\": {},\n  \"errors\": {},\n  \"wall_secs\": {:.6},\n  \
         \"rps\": {:.1},\n  \"p50_ms\": {:.3},\n  \"p90_ms\": {:.3},\n  \
         \"p99_ms\": {:.3},\n  \"max_ms\": {:.3}\n}}\n",
        report.requests,
        report.concurrency,
        report.ok,
        report.shed,
        report.unavailable,
        report.errors,
        report.wall_secs,
        report.rps,
        report.p50_ms,
        report.p90_ms,
        report.p99_ms,
        report.max_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_both_ways() {
        let report = LoadgenReport {
            requests: 100,
            concurrency: 4,
            ok: 90,
            shed: 6,
            unavailable: 4,
            errors: 0,
            wall_secs: 0.5,
            rps: 200.0,
            p50_ms: 1.0,
            p90_ms: 2.0,
            p99_ms: 3.0,
            max_ms: 4.0,
        };
        let text = render(&report);
        assert!(text.contains("90 admitted"));
        assert!(text.contains("p99 3.000 ms"));
        let json = to_bench_json(&report);
        let v = crate::json::parse(json.as_bytes()).unwrap();
        assert_eq!(v.get("benchmark").and_then(|x| x.as_str()), Some("serve"));
        assert_eq!(v.get("rps").and_then(|x| x.as_f64()), Some(200.0));
        assert_eq!(v.get("p99_ms").and_then(|x| x.as_f64()), Some(3.0));
    }
}
