//! `pmstackd` — the serving plane of the power-management stack.
//!
//! The batch stack (`repro`'s tables, grids, campaigns) answers "what did
//! the policies do"; this crate answers it *live*. One daemon hosts a
//! simulated fleet and exposes three surfaces over plain HTTP/1.1 on
//! `std::net` (no external dependencies, like everything else here):
//!
//! * `GET /metrics` — the process-wide observability registry, rendered by
//!   the exporter family (Prometheus text by default, `?format=json` /
//!   `?format=summary` for the others).
//! * `GET /stream?frames=N&interval_ms=M` — chunked JSON fleet snapshots
//!   at a configurable cadence.
//! * `POST /submit` — the admission API: an app class, a node count, and a
//!   policy name in; a policy decision with per-host cap assignments out.
//!
//! Load is shed down a three-rung ladder, each rung observable in
//! `/metrics`: a full connection queue answers 503 inline from the accept
//! loop, the `/submit` in-flight gate answers 429, and admission itself
//! answers 503 when power or nodes run out. The [`loadgen`] module is the
//! closed-loop generator the CI gate drives against all of this.
//!
//! Threading: request workers (a bounded [`pmstack_exec::ServicePool`])
//! touch only the admission struct and published snapshots; one dedicated
//! step-loop thread owns the [`pmstack_runtime::JobPlatform`], drains
//! queued cap programs, and publishes [`pmstack_runtime::FleetSnapshot`]s.
//! Request latency is therefore independent of fleet size.

pub mod admission;
pub mod fleet;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod server;

pub use admission::{Admission, AppClass, Grant, Reject, SubmitRequest};
pub use fleet::{Fleet, FleetConfig};
pub use loadgen::{run_loadgen, LoadgenParams, LoadgenReport};
pub use server::{Daemon, DaemonConfig};
