//! Typed failure handling for the unified stack.
//!
//! The coordinator's original invariants were panics: an empty mix, a mix
//! that does not fit, a policy returning the wrong cap shape. Those stay
//! available through the infallible [`crate::coordinator::Coordinator::run_mix`]
//! wrapper, but the real API is now
//! [`crate::coordinator::Coordinator::try_run_mix`], which returns a
//! [`CoordinatorError`] instead of tearing the process down — the stack's
//! answer to §I's "the system must keep operating under its power contract
//! even when parts of it misbehave".
//!
//! The same module carries the [`ResilienceReport`]: the record of what the
//! stack *did* about injected hardware faults — which nodes died, what the
//! resource manager reclaimed, and whether the coordinator re-allocated the
//! survivors mid-run.

use pmstack_rm::SchedulerEvent;
use pmstack_simhw::{FaultEvent, FaultPlan, Watts};
use std::fmt;

/// A typed coordinator failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorError {
    /// The mix had no jobs.
    EmptyMix,
    /// The scheduler could not admit every job of the mix at once.
    MixDoesNotFit {
        /// Jobs in the mix.
        submitted: usize,
        /// Jobs the scheduler admitted.
        admitted: usize,
    },
    /// The policy produced a cap vector whose shape does not match the
    /// granted hosts.
    CapShapeMismatch {
        /// The offending job (mix order).
        job: usize,
        /// Caps the policy produced for it.
        caps: usize,
        /// Hosts the job actually holds.
        hosts: usize,
    },
    /// Every host of every job died before the run could finish.
    AllHostsFailed,
}

impl fmt::Display for CoordinatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The wording of the first two preserves the historical panic
            // messages (`run_mix` re-panics with `{self}`).
            Self::EmptyMix => write!(f, "cannot run an empty mix"),
            Self::MixDoesNotFit {
                submitted,
                admitted,
            } => write!(
                f,
                "the mix must fit the cluster and budget: {admitted} of {submitted} jobs admitted"
            ),
            Self::CapShapeMismatch { job, caps, hosts } => write!(
                f,
                "policy produced {caps} caps for job {job} holding {hosts} hosts"
            ),
            Self::AllHostsFailed => write!(f, "every host of the mix failed mid-run"),
        }
    }
}

impl std::error::Error for CoordinatorError {}

/// What the stack observed and did about hardware faults during a mix run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Fault events scheduled against the mix's hosts (cluster-global
    /// host indices).
    pub injected: Vec<FaultEvent>,
    /// Resource-manager events raised while draining dead nodes.
    pub rm_events: Vec<SchedulerEvent>,
    /// Cluster-global ids of nodes that died during the run.
    pub dead_nodes: Vec<usize>,
    /// Watts the ledger reclaimed from degraded jobs.
    pub reclaimed: Watts,
    /// True when the coordinator re-characterized and re-allocated the
    /// surviving hosts mid-run (online mode only).
    pub reallocated: bool,
    /// Watts the ledger still held reserved when the run ended — never
    /// above the system budget, whatever failed.
    pub reserved_after: Watts,
}

impl ResilienceReport {
    /// True when no fault touched the run.
    pub fn clean(&self) -> bool {
        self.injected.is_empty() && self.dead_nodes.is_empty()
    }

    /// Record the outcome of one `fail_node` call.
    pub(crate) fn absorb(&mut self, events: Vec<SchedulerEvent>) {
        for ev in &events {
            match ev {
                SchedulerEvent::NodeFailed { node, .. } => self.dead_nodes.push(node.0),
                SchedulerEvent::JobDegraded { reclaimed, .. } => self.reclaimed += *reclaimed,
                _ => {}
            }
        }
        self.rm_events.extend(events);
    }
}

/// Slice a mix-wide fault plan (cluster-global host ids) into one job's
/// platform-local plan for a phase window: keep events whose host lies in
/// `grant` and whose iteration lies in `[start, start + len)`, remapping the
/// host to its local index and the iteration to the window origin.
pub(crate) fn slice_plan(plan: &FaultPlan, grant: &[usize], start: u64, len: u64) -> FaultPlan {
    let end = start.saturating_add(len);
    let events: Vec<FaultEvent> = plan
        .events()
        .iter()
        .filter(|e| e.at_iteration >= start && e.at_iteration < end)
        .filter_map(|e| {
            grant
                .iter()
                .position(|&g| g == e.host)
                .map(|local| FaultEvent {
                    at_iteration: e.at_iteration - start,
                    host: local,
                    kind: e.kind,
                })
        })
        .collect();
    FaultPlan::scripted(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_simhw::faults::kill;

    #[test]
    fn error_displays_preserve_the_historical_panic_text() {
        assert_eq!(
            CoordinatorError::EmptyMix.to_string(),
            "cannot run an empty mix"
        );
        let e = CoordinatorError::MixDoesNotFit {
            submitted: 3,
            admitted: 1,
        };
        assert!(e.to_string().contains("must fit the cluster"));
        assert!(e.to_string().contains("1 of 3"));
        let e = CoordinatorError::CapShapeMismatch {
            job: 2,
            caps: 4,
            hosts: 3,
        };
        assert!(e.to_string().contains("4 caps"));
        assert!(CoordinatorError::AllHostsFailed
            .to_string()
            .contains("failed"));
    }

    #[test]
    fn slicing_remaps_hosts_and_iterations() {
        let plan = FaultPlan::scripted(vec![kill(7, 2), kill(9, 12), kill(3, 14), kill(9, 30)]);
        // Job holds global nodes 9 and 7; window is iterations [10, 25).
        let local = slice_plan(&plan, &[9, 7], 10, 15);
        assert_eq!(local.len(), 1);
        let ev = local.events()[0];
        assert_eq!(ev.host, 0, "global node 9 is the job's first host");
        assert_eq!(ev.at_iteration, 2, "iteration rebased to the window");
    }

    #[test]
    fn report_absorbs_rm_events() {
        use pmstack_rm::{FifoScheduler, JobSpec, NodePool, PowerLedger};
        use pmstack_simhw::NodeId;
        let mut s = FifoScheduler::new(
            NodePool::new(3),
            PowerLedger::new(Watts(600.0)),
            Watts(150.0),
        );
        s.submit(JobSpec::new("a", 2));
        s.tick();
        let mut report = ResilienceReport::default();
        assert!(report.clean());
        report.absorb(s.fail_node(NodeId(0)));
        assert_eq!(report.dead_nodes, vec![0]);
        assert!(report.reclaimed > Watts::ZERO);
        assert!(!report.clean());
    }
}
