//! Fast steady-state evaluation of a workload mix under an allocation.
//!
//! The Fig. 7 / Fig. 8 grids sweep 5 policies × 6 mixes × 3 budgets with
//! 100-iteration statistics; running the full RAPL-filter simulation for
//! each cell would be wasteful when every policy's allocation is static at
//! steady state. This evaluator computes each host's PCU operating point
//! directly, applies seeded per-iteration jitter for the confidence
//! intervals, and aggregates exactly the metrics the paper reports. The
//! integration tests check it against the full [`crate::coordinator`] runs.

use crate::allocation::Allocation;
use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_simhw::{Joules, LoadModel, PowerModel, Seconds, Watts};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One job of a mix: its kernel configuration and its hosts' efficiency
/// factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSetup {
    /// The workload.
    pub config: KernelConfig,
    /// Efficiency factor of each host assigned to the job.
    pub host_eps: Vec<f64>,
}

impl JobSetup {
    /// A job on `n` nominal hosts.
    pub fn uniform(config: KernelConfig, n: usize) -> Self {
        Self {
            config,
            host_eps: vec![1.0; n],
        }
    }
}

/// Steady-state outcome of one job under an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Total elapsed time for the configured iterations.
    pub elapsed: Seconds,
    /// Per-iteration elapsed times (jittered; feeds the CIs).
    pub iteration_times: Vec<Seconds>,
    /// Total job energy.
    pub energy: Joules,
    /// Total FLOPs.
    pub flops: f64,
    /// Steady per-host power draw.
    pub host_power: Vec<Watts>,
}

impl JobOutcome {
    /// Average job power.
    pub fn avg_power(&self) -> Watts {
        if self.elapsed.value() <= 0.0 {
            return Watts::ZERO;
        }
        self.energy / self.elapsed
    }
}

/// Steady-state outcome of a whole mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixEvaluation {
    /// Per-job outcomes, mix order.
    pub jobs: Vec<JobOutcome>,
}

impl MixEvaluation {
    /// Mean job elapsed time — the paper's "system time dedicated to jobs".
    pub fn mean_elapsed(&self) -> Seconds {
        Seconds(self.jobs.iter().map(|j| j.elapsed.value()).sum::<f64>() / self.jobs.len() as f64)
    }

    /// Total energy across jobs.
    pub fn total_energy(&self) -> Joules {
        self.jobs.iter().map(|j| j.energy).sum()
    }

    /// Total FLOPs across jobs.
    pub fn total_flops(&self) -> f64 {
        self.jobs.iter().map(|j| j.flops).sum()
    }

    /// Mean of per-job average powers times job count — i.e. the steady
    /// total power draw of the mix while all jobs run.
    pub fn total_power(&self) -> Watts {
        self.jobs
            .iter()
            .map(|j| j.host_power.iter().copied().sum::<Watts>())
            .sum()
    }

    /// Mix-level energy-delay product (total energy × mean elapsed).
    pub fn energy_delay_product(&self) -> f64 {
        self.total_energy().value() * self.mean_elapsed().value()
    }

    /// Achieved FLOPS per watt (total flops over total energy).
    pub fn flops_per_watt(&self) -> f64 {
        let e = self.total_energy().value();
        if e <= 0.0 {
            0.0
        } else {
            self.total_flops() / e
        }
    }
}

/// The execution-time effect of running each job under the *power
/// balancer* runtime agent (what the application-aware policies do, §III).
///
/// The RM-side allocation fixes each job's total power; at execution time
/// the balancer inside the job (a) equalizes performance across the job's
/// hosts — power flows toward hosts that need more (inefficient parts,
/// heavier ranks) in proportion to their characterized needed power — and
/// (b) never burns watts above a host's needed power, because it "reduces
/// the power limit where it does not impact performance". Both behaviours
/// are what produce the paper's marker-(a) (less power used under relaxed
/// limits) and the min-budget time savings where the static allocation is
/// uniform.
///
/// Application-agnostic policies (`StaticCaps`, `MinimizeWaste`,
/// `Precharacterized`) run without a managing job runtime; their hosts draw
/// whatever their static caps allow. Do not apply this to them.
pub fn apply_job_runtime(
    alloc: &crate::allocation::Allocation,
    chars: &[crate::characterization::JobChar],
    ctx: &crate::policy::PolicyCtx,
) -> crate::allocation::Allocation {
    assert_eq!(
        alloc.jobs.len(),
        chars.len(),
        "allocation/characterization mismatch"
    );
    let jobs = alloc
        .jobs
        .iter()
        .zip(chars)
        .map(|(caps, job)| {
            let job_total: Watts = caps.iter().copied().sum();
            let needed: Vec<Watts> = job.hosts.iter().map(|h| ctx.clamp(h.needed)).collect();
            crate::allocation::proportional_fit(&needed, job_total, ctx.min_node, ctx.tdp_node)
        })
        .collect();
    crate::allocation::Allocation { jobs }
}

/// Evaluate a mix: jobs, their allocations, `iterations` bulk-synchronous
/// iterations each, with per-iteration jitter of relative magnitude
/// `jitter_sigma` (0 disables) drawn from a seeded generator.
///
/// Each job's jitter stream is seeded explicitly from `(seed, job index)`
/// rather than drawn from one generator threaded through the jobs in order,
/// so the result is independent of evaluation order — the jobs fan out over
/// the work-stealing pool and a parallel run is bit-identical to a
/// sequential one.
pub fn evaluate_mix(
    model: &PowerModel,
    setups: &[JobSetup],
    alloc: &Allocation,
    iterations: usize,
    jitter_sigma: f64,
    seed: u64,
) -> MixEvaluation {
    assert_eq!(
        setups.len(),
        alloc.jobs.len(),
        "allocation and mix shape mismatch"
    );
    let jobs = pmstack_exec::par_map_indexed(setups, |j, setup| {
        evaluate_job(
            model,
            setup,
            &alloc.jobs[j],
            iterations,
            jitter_sigma,
            job_jitter_seed(seed, j as u64),
        )
    });
    MixEvaluation { jobs }
}

/// Derive job `j`'s jitter seed from the mix seed — a splitmix64 finalizer
/// so adjacent (seed, job) pairs decorrelate fully.
fn job_jitter_seed(seed: u64, job: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(job.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn evaluate_job(
    model: &PowerModel,
    setup: &JobSetup,
    caps: &[Watts],
    iterations: usize,
    jitter_sigma: f64,
    seed: u64,
) -> JobOutcome {
    assert_eq!(
        setup.host_eps.len(),
        caps.len(),
        "allocation and job host-count mismatch"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let load = KernelLoad::shared(setup.config, model.spec());
    let mut host_power = Vec::with_capacity(caps.len());
    let mut slowest = Seconds::ZERO;
    for (&eps, &cap) in setup.host_eps.iter().zip(caps) {
        let op = load.operating_point(model, eps, cap);
        host_power.push(op.power);
        slowest = slowest.max(load.iteration_time(&op));
    }
    let total_power: Watts = host_power.iter().copied().sum();

    let mut iteration_times = Vec::with_capacity(iterations);
    let mut elapsed = Seconds::ZERO;
    for _ in 0..iterations {
        let jitter = if jitter_sigma > 0.0 {
            let u: f64 = rng.gen::<f64>() + rng.gen::<f64>() - 1.0;
            (1.0 + u * jitter_sigma * 1.7).max(0.5)
        } else {
            1.0
        };
        let t = Seconds(slowest.value() * jitter);
        iteration_times.push(t);
        elapsed += t;
    }

    let flops =
        load.perf().node_flops_per_iteration() * iterations as f64 * setup.host_eps.len() as f64;
    JobOutcome {
        elapsed,
        iteration_times,
        energy: total_power * elapsed,
        flops,
        host_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::JobChar;
    use crate::policies::{MixedAdaptive, StaticCaps};
    use crate::policy::{PolicyCtx, PowerPolicy};
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::quartz_spec;

    fn model() -> PowerModel {
        PowerModel::new(quartz_spec()).unwrap()
    }

    fn ctx(budget_w: f64) -> PolicyCtx {
        PolicyCtx {
            system_budget: Watts(budget_w),
            min_node: Watts(136.0),
            tdp_node: Watts(240.0),
        }
    }

    fn eval_under(policy: &dyn PowerPolicy, setups: &[JobSetup], budget_w: f64) -> MixEvaluation {
        let m = model();
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, &m, &s.host_eps))
            .collect();
        let alloc = policy.allocate(&ctx(budget_w), &chars);
        evaluate_mix(&m, setups, &alloc, 100, 0.0, 7)
    }

    #[test]
    fn evaluation_is_deterministic_without_jitter() {
        let setups = vec![JobSetup::uniform(KernelConfig::balanced_ymm(8.0), 4)];
        let a = eval_under(&StaticCaps, &setups, 4.0 * 180.0);
        let b = eval_under(&StaticCaps, &setups, 4.0 * 180.0);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        // Jittered, multi-job: per-job explicit seeding must make the
        // pooled fan-out agree with the forced-sequential reference exactly.
        let m = model();
        let setups: Vec<JobSetup> = [8.0, 0.5, 16.0, 2.0, 0.25, 4.0]
            .iter()
            .map(|&i| JobSetup::uniform(KernelConfig::balanced_ymm(i), 3))
            .collect();
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, &m, &s.host_eps))
            .collect();
        let alloc = StaticCaps.allocate(&ctx(18.0 * 190.0), &chars);
        let par = evaluate_mix(&m, &setups, &alloc, 50, 0.02, 11);
        let seq =
            pmstack_exec::sequential_scope(|| evaluate_mix(&m, &setups, &alloc, 50, 0.02, 11));
        assert_eq!(par, seq);
    }

    #[test]
    fn job_jitter_streams_depend_only_on_seed_and_index() {
        // Identical jobs at different indices decorrelate; a job's stream
        // does not depend on what the *other* jobs of the mix are — the
        // property that makes order of evaluation irrelevant.
        let m = model();
        let job = JobSetup::uniform(KernelConfig::balanced_ymm(8.0), 2);
        let chars: Vec<JobChar> =
            std::iter::repeat_with(|| JobChar::analytic(job.config, &m, &job.host_eps))
                .take(2)
                .collect();
        let alloc = StaticCaps.allocate(&ctx(4.0 * 190.0), &chars);
        let eval = evaluate_mix(&m, &[job.clone(), job.clone()], &alloc, 60, 0.02, 9);
        assert_ne!(
            eval.jobs[0].iteration_times, eval.jobs[1].iteration_times,
            "same config at different indices must draw distinct jitter"
        );
        // Replacing job 1 with a different workload leaves job 0's stream
        // untouched (with one threaded generator it would survive only by
        // accident of draw counts).
        let other = JobSetup::uniform(KernelConfig::balanced_ymm(0.5), 2);
        let chars2 = vec![
            JobChar::analytic(job.config, &m, &job.host_eps),
            JobChar::analytic(other.config, &m, &other.host_eps),
        ];
        let alloc2 = StaticCaps.allocate(&ctx(4.0 * 190.0), &chars2);
        let eval2 = evaluate_mix(&m, &[job, other], &alloc2, 60, 0.02, 9);
        assert_eq!(eval.jobs[0].iteration_times, eval2.jobs[0].iteration_times);
    }

    #[test]
    fn mixed_beats_static_when_power_can_cross_jobs() {
        // One wasteful (needs < uses) job + one power-hungry job under a
        // moderate budget: MixedAdaptive should finish the mix faster.
        let wasteful = KernelConfig::new(
            8.0,
            VectorWidth::Ymm,
            WaitingFraction::P75,
            Imbalance::ThreeX,
        );
        let hungry = KernelConfig::balanced_ymm(8.0);
        let setups = vec![JobSetup::uniform(wasteful, 4), JobSetup::uniform(hungry, 4)];
        let budget = 8.0 * 200.0;
        let stat = eval_under(&StaticCaps, &setups, budget);
        let mixed = eval_under(&MixedAdaptive, &setups, budget);
        assert!(
            mixed.mean_elapsed() < stat.mean_elapsed(),
            "mixed {} vs static {}",
            mixed.mean_elapsed(),
            stat.mean_elapsed()
        );
    }

    #[test]
    fn tighter_budget_never_speeds_a_mix_up() {
        let setups = vec![JobSetup::uniform(KernelConfig::balanced_ymm(16.0), 3)];
        let loose = eval_under(&StaticCaps, &setups, 3.0 * 240.0);
        let tight = eval_under(&StaticCaps, &setups, 3.0 * 150.0);
        assert!(tight.mean_elapsed() >= loose.mean_elapsed());
    }

    #[test]
    fn jitter_produces_spread_but_preserves_mean() {
        let m = model();
        let setups = vec![JobSetup::uniform(KernelConfig::balanced_ymm(8.0), 2)];
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, &m, &s.host_eps))
            .collect();
        let alloc = StaticCaps.allocate(&ctx(2.0 * 200.0), &chars);
        let clean = evaluate_mix(&m, &setups, &alloc, 200, 0.0, 1);
        let noisy = evaluate_mix(&m, &setups, &alloc, 200, 0.01, 1);
        let tc = clean.mean_elapsed().value();
        let tn = noisy.mean_elapsed().value();
        assert!((tn - tc).abs() / tc < 0.01);
        let times: Vec<f64> = noisy.jobs[0]
            .iteration_times
            .iter()
            .map(|t| t.value())
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!(times.iter().any(|t| (t - mean).abs() / mean > 0.002));
    }

    #[test]
    fn flops_per_watt_and_edp_are_consistent() {
        let setups = vec![JobSetup::uniform(KernelConfig::balanced_ymm(8.0), 2)];
        let e = eval_under(&StaticCaps, &setups, 2.0 * 200.0);
        let manual = e.total_flops() / e.total_energy().value();
        assert!((e.flops_per_watt() - manual).abs() < 1e-9);
        assert!(e.energy_delay_product() > 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_is_rejected() {
        let m = model();
        let setups = vec![JobSetup::uniform(KernelConfig::balanced_ymm(8.0), 2)];
        let alloc = Allocation { jobs: vec![] };
        evaluate_mix(&m, &setups, &alloc, 10, 0.0, 0);
    }
}
