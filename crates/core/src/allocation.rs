//! Allocation containers and the redistribution arithmetic the policies
//! share.

use pmstack_simhw::Watts;
use serde::{Deserialize, Serialize};

/// A per-host power allocation, grouped by job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// `jobs[j][h]` is the node power cap of host `h` of job `j`.
    pub jobs: Vec<Vec<Watts>>,
}

impl Allocation {
    /// Total allocated power.
    pub fn total(&self) -> Watts {
        self.jobs.iter().flatten().copied().sum()
    }

    /// Total allocated to one job.
    pub fn job_total(&self, j: usize) -> Watts {
        self.jobs[j].iter().copied().sum()
    }

    /// Number of hosts across all jobs.
    pub fn num_hosts(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }

    /// True when every cap lies within `[min, max]` (with float slack).
    pub fn within(&self, min: Watts, max: Watts) -> bool {
        self.jobs
            .iter()
            .flatten()
            .all(|&c| c >= min - Watts(1e-9) && c <= max + Watts(1e-9))
    }
}

/// Uniformly fill `caps` toward per-host `targets` from a `pool`,
/// repeating until the pool is exhausted or every host reached its target
/// (step 3 of the §III-A MixedAdaptive procedure). Returns the unspent pool.
pub fn uniform_fill_to_targets(caps: &mut [Watts], targets: &[Watts], mut pool: Watts) -> Watts {
    assert_eq!(caps.len(), targets.len());
    loop {
        let hungry: Vec<usize> = (0..caps.len())
            .filter(|&h| caps[h] < targets[h] - Watts(1e-9))
            .collect();
        if hungry.is_empty() || pool <= Watts(1e-9) {
            return pool;
        }
        let share = pool / hungry.len() as f64;
        let mut spent = Watts::ZERO;
        for &h in &hungry {
            let grant = share.min(targets[h] - caps[h]);
            caps[h] += grant;
            spent += grant;
        }
        pool -= spent;
        if spent <= Watts(1e-12) {
            return pool;
        }
    }
}

/// Scale per-host `targets` proportionally so their sum fits `budget`,
/// respecting the hardware floor: hosts whose scaled share would fall below
/// `floor` are pinned there and the remaining budget is re-scaled over the
/// rest (iteratively, since pinning changes the split). Targets above
/// `ceil` are clamped first. When the budget cannot cover `n·floor`, every
/// host sits at the floor — the hardware minimum wins, as on real parts.
pub fn proportional_fit(targets: &[Watts], budget: Watts, floor: Watts, ceil: Watts) -> Vec<Watts> {
    let targets: Vec<Watts> = targets.iter().map(|&t| t.clamp(floor, ceil)).collect();
    let total: Watts = targets.iter().copied().sum();
    if total <= budget + Watts(1e-9) {
        return targets;
    }
    let mut pinned = vec![false; targets.len()];
    loop {
        let pinned_total: Watts = targets
            .iter()
            .zip(&pinned)
            .filter(|(_, &p)| p)
            .map(|_| floor)
            .sum();
        let free_total: Watts = targets
            .iter()
            .zip(&pinned)
            .filter(|(_, &p)| !p)
            .map(|(&t, _)| t)
            .sum();
        if free_total.value() <= 0.0 {
            return vec![floor; targets.len()];
        }
        let scale = ((budget - pinned_total) / free_total).max(0.0);
        let mut newly_pinned = false;
        let caps: Vec<Watts> = targets
            .iter()
            .zip(pinned.iter_mut())
            .map(|(&t, p)| {
                if *p {
                    floor
                } else {
                    let c = t * scale;
                    if c < floor {
                        *p = true;
                        newly_pinned = true;
                        floor
                    } else {
                        c
                    }
                }
            })
            .collect();
        if !newly_pinned {
            return caps;
        }
    }
}

/// Distribute `pool` across hosts weighted by each host's distance from
/// `floor` to its current cap (step 4 of §III-A: "the weight of each host is
/// determined by the distance from the host's minimum settable power limit
/// to the host's allocated power"), never exceeding `ceil`. Iterates so
/// watts bouncing off the ceiling flow to hosts with headroom. Returns the
/// unspent pool (non-zero only when every host hit the ceiling).
pub fn weighted_headroom_distribute(
    caps: &mut [Watts],
    floor: Watts,
    ceil: Watts,
    mut pool: Watts,
) -> Watts {
    for _ in 0..64 {
        if pool <= Watts(1e-9) {
            return pool;
        }
        let weights: Vec<f64> = caps
            .iter()
            .map(|&c| {
                if c < ceil - Watts(1e-9) {
                    (c - floor).value().max(0.0)
                } else {
                    0.0
                }
            })
            .collect();
        let total_w: f64 = weights.iter().sum();
        if total_w <= 0.0 {
            // All weights zero with headroom remaining (every open host sits
            // at the floor): fall back to a uniform spread over open hosts.
            let open: Vec<usize> = (0..caps.len())
                .filter(|&h| caps[h] < ceil - Watts(1e-9))
                .collect();
            if open.is_empty() {
                return pool;
            }
            let share = pool / open.len() as f64;
            let mut spent = Watts::ZERO;
            for &h in &open {
                let grant = share.min(ceil - caps[h]);
                caps[h] += grant;
                spent += grant;
            }
            pool -= spent;
            continue;
        }
        let mut spent = Watts::ZERO;
        for (h, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            let grant = (pool * (w / total_w)).min(ceil - caps[h]);
            caps[h] += grant;
            spent += grant;
        }
        pool -= spent;
        if spent <= Watts(1e-12) {
            return pool;
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_totals() {
        let a = Allocation {
            jobs: vec![vec![Watts(100.0), Watts(120.0)], vec![Watts(80.0)]],
        };
        assert_eq!(a.total(), Watts(300.0));
        assert_eq!(a.job_total(0), Watts(220.0));
        assert_eq!(a.num_hosts(), 3);
        assert!(a.within(Watts(80.0), Watts(120.0)));
        assert!(!a.within(Watts(90.0), Watts(120.0)));
    }

    #[test]
    fn uniform_fill_reaches_targets_when_pool_suffices() {
        let mut caps = vec![Watts(100.0), Watts(150.0), Watts(180.0)];
        let targets = vec![Watts(180.0), Watts(160.0), Watts(180.0)];
        let left = uniform_fill_to_targets(&mut caps, &targets, Watts(200.0));
        assert_eq!(caps, targets);
        assert!((left.value() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_fill_splits_scarce_pool_evenly() {
        let mut caps = vec![Watts(100.0), Watts(100.0)];
        let targets = vec![Watts(200.0), Watts(200.0)];
        let left = uniform_fill_to_targets(&mut caps, &targets, Watts(60.0));
        assert!((caps[0].value() - 130.0).abs() < 1e-9);
        assert!((caps[1].value() - 130.0).abs() < 1e-9);
        assert!(left.value() < 1e-9);
    }

    #[test]
    fn uniform_fill_cascades_past_small_targets() {
        // Host 0 needs only 10 W; its unused share must cascade to host 1.
        let mut caps = vec![Watts(100.0), Watts(100.0)];
        let targets = vec![Watts(110.0), Watts(300.0)];
        let left = uniform_fill_to_targets(&mut caps, &targets, Watts(100.0));
        assert!((caps[0].value() - 110.0).abs() < 1e-9);
        assert!((caps[1].value() - 190.0).abs() < 1e-9);
        assert!(left.value() < 1e-9);
    }

    #[test]
    fn weighted_distribute_follows_headroom_weights() {
        let mut caps = vec![Watts(136.0), Watts(186.0)];
        // Weights 0 and 50: everything goes to host 1.
        let left = weighted_headroom_distribute(&mut caps, Watts(136.0), Watts(240.0), Watts(40.0));
        assert!((caps[0].value() - 136.0).abs() < 1e-9);
        assert!((caps[1].value() - 226.0).abs() < 1e-9);
        assert!(left.value() < 1e-9);
    }

    #[test]
    fn weighted_distribute_respects_ceiling_and_reflows() {
        let mut caps = vec![Watts(230.0), Watts(160.0)];
        let left = weighted_headroom_distribute(&mut caps, Watts(136.0), Watts(240.0), Watts(60.0));
        // Host 0 can absorb only 10 W; the rest flows to host 1.
        assert!((caps[0].value() - 240.0).abs() < 1e-6);
        assert!((caps[1].value() - 210.0).abs() < 1e-6);
        assert!(left.value() < 1e-6);
    }

    #[test]
    fn weighted_distribute_all_at_floor_falls_back_to_uniform() {
        let mut caps = vec![Watts(136.0), Watts(136.0)];
        let left = weighted_headroom_distribute(&mut caps, Watts(136.0), Watts(240.0), Watts(50.0));
        assert!((caps[0].value() - 161.0).abs() < 1e-6);
        assert!((caps[1].value() - 161.0).abs() < 1e-6);
        assert!(left.value() < 1e-6);
    }

    #[test]
    fn proportional_fit_passthrough_when_budget_suffices() {
        let targets = vec![Watts(150.0), Watts(200.0)];
        let caps = proportional_fit(&targets, Watts(400.0), Watts(136.0), Watts(240.0));
        assert_eq!(caps, targets);
    }

    #[test]
    fn proportional_fit_scales_down_proportionally() {
        let targets = vec![Watts(200.0), Watts(200.0)];
        let caps = proportional_fit(&targets, Watts(300.0), Watts(100.0), Watts(240.0));
        assert!((caps[0].value() - 150.0).abs() < 1e-9);
        assert!((caps[1].value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_fit_pins_floor_and_rescales() {
        // Naive 0.75 scaling would put host 0 at 120 < 136; it pins and the
        // other host absorbs the difference.
        let targets = vec![Watts(160.0), Watts(240.0)];
        let caps = proportional_fit(&targets, Watts(300.0), Watts(136.0), Watts(240.0));
        assert!((caps[0].value() - 136.0).abs() < 1e-9);
        assert!((caps[1].value() - 164.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_fit_infeasible_budget_sits_at_floor() {
        let targets = vec![Watts(200.0), Watts(200.0)];
        let caps = proportional_fit(&targets, Watts(100.0), Watts(136.0), Watts(240.0));
        assert_eq!(caps, vec![Watts(136.0), Watts(136.0)]);
    }

    #[test]
    fn weighted_distribute_returns_surplus_when_saturated() {
        let mut caps = vec![Watts(239.0)];
        let left = weighted_headroom_distribute(&mut caps, Watts(136.0), Watts(240.0), Watts(50.0));
        assert!((caps[0].value() - 240.0).abs() < 1e-6);
        assert!((left.value() - 49.0).abs() < 1e-6);
    }
}
