//! The `StaticCaps` policy (§III-B) — the Fig. 8 baseline.
//!
//! "System power is uniformly distributed to all nodes in the cluster. A
//! static cap is applied for each job, using the max of average powers from
//! all nodes in the job's monitor characterization run. Note that this
//! policy's final state is the same as the initial state of the
//! MinimizeWaste and MixedAdaptive power-sharing policies."
//!
//! The cap is the smaller of the uniform system share and the job's own
//! peak observed power; since a cap above a node's draw is non-binding, the
//! second term never changes behaviour — it just avoids programming
//! meaninglessly high limits.

use crate::allocation::Allocation;
use crate::characterization::JobChar;
use crate::policy::{PolicyCtx, PolicyKind, PowerPolicy};

/// Uniform system share per host, budget-aware but performance-agnostic.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticCaps;

impl PowerPolicy for StaticCaps {
    fn kind(&self) -> PolicyKind {
        PolicyKind::StaticCaps
    }

    fn system_aware(&self) -> bool {
        true
    }

    fn application_aware(&self) -> bool {
        false
    }

    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation {
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        assert!(n > 0, "allocation over an empty mix");
        let share = ctx.system_budget / n as f64;
        let jobs = jobs
            .iter()
            .map(|job| {
                let cap = ctx.clamp(share.min(ctx.clamp(job.max_used())));
                vec![cap; job.num_hosts()]
            })
            .collect();
        Allocation { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{ctx, job};
    use pmstack_simhw::Watts;

    #[test]
    fn uniform_share_binds_under_tight_budget() {
        let jobs = vec![job(2, 230.0, 180.0), job(2, 220.0, 150.0)];
        let alloc = StaticCaps.allocate(&ctx(4.0 * 150.0), &jobs);
        for cap in alloc.jobs.iter().flatten() {
            assert_eq!(*cap, Watts(150.0));
        }
    }

    #[test]
    fn job_peak_bounds_the_cap_under_loose_budget() {
        let jobs = vec![job(2, 230.0, 180.0), job(2, 190.0, 150.0)];
        let alloc = StaticCaps.allocate(&ctx(4.0 * 240.0), &jobs);
        assert_eq!(alloc.jobs[0][0], Watts(230.0));
        assert_eq!(alloc.jobs[1][0], Watts(190.0));
    }

    #[test]
    fn share_is_clamped_to_hardware_floor() {
        let jobs = vec![job(3, 230.0, 180.0)];
        let alloc = StaticCaps.allocate(&ctx(3.0 * 100.0), &jobs);
        for cap in alloc.jobs.iter().flatten() {
            assert_eq!(*cap, Watts(136.0));
        }
    }

    #[test]
    fn never_exceeds_budget_when_budget_is_feasible() {
        let jobs = vec![job(5, 230.0, 200.0), job(4, 210.0, 160.0)];
        let c = ctx(9.0 * 165.0);
        let alloc = StaticCaps.allocate(&c, &jobs);
        assert!(alloc.total() <= c.system_budget + Watts(1e-6));
    }
}
