//! The `Precharacterized` policy (§III-B).
//!
//! "A user pre-characterizes a workload, and submits the job with a power
//! cap equal to the average power consumption at the most power-hungry
//! node. This policy does not consider system-wide power limits."
//!
//! It is the pure application-side siloed baseline: each job asks for what
//! it observed itself using, and nobody reconciles the total against the
//! site budget — which is why Fig. 7 shows it blowing through the budget at
//! every level except `max`.

use crate::allocation::Allocation;
use crate::characterization::JobChar;
use crate::policy::{PolicyCtx, PolicyKind, PowerPolicy};

/// Per-job static caps from user pre-characterization; budget-blind.
#[derive(Debug, Clone, Copy, Default)]
pub struct Precharacterized;

impl PowerPolicy for Precharacterized {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Precharacterized
    }

    fn system_aware(&self) -> bool {
        false
    }

    fn application_aware(&self) -> bool {
        false
    }

    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation {
        let jobs = jobs
            .iter()
            .map(|job| {
                let cap = ctx.clamp(job.max_used());
                vec![cap; job.num_hosts()]
            })
            .collect();
        Allocation { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{ctx, job};
    use pmstack_simhw::Watts;

    #[test]
    fn caps_equal_max_used_per_job() {
        let jobs = vec![job(2, 230.0, 180.0), job(2, 190.0, 150.0)];
        let alloc = Precharacterized.allocate(&ctx(100.0), &jobs);
        assert_eq!(alloc.jobs[0], vec![Watts(230.0), Watts(230.0)]);
        assert_eq!(alloc.jobs[1], vec![Watts(190.0), Watts(190.0)]);
    }

    #[test]
    fn ignores_the_budget_entirely() {
        let jobs = vec![job(4, 230.0, 180.0)];
        let tight = Precharacterized.allocate(&ctx(10.0), &jobs);
        let loose = Precharacterized.allocate(&ctx(1e9), &jobs);
        assert_eq!(tight, loose);
        assert!(tight.total() > Watts(10.0), "exceeds a tight budget");
    }

    #[test]
    fn caps_are_clamped_into_settable_range() {
        let jobs = vec![job(1, 300.0, 300.0), job(1, 50.0, 40.0)];
        let alloc = Precharacterized.allocate(&ctx(1e9), &jobs);
        assert_eq!(alloc.jobs[0][0], Watts(240.0));
        assert_eq!(alloc.jobs[1][0], Watts(136.0));
    }
}
