//! The `MixedAdaptive` policy — the paper's contribution (§III-A).
//!
//! "The proposed MixedAdaptive policy enables a resource manager to share
//! power across jobs in a power-aware manner. This policy's power awareness
//! is made available to the resource manager by a job runtime…"
//!
//! The four distribution steps, verbatim from the paper:
//!
//! 1. Uniformly distribute the system power limit among hosts across all
//!    jobs.
//! 2. Decrease the allocated power of each host down to the amount of power
//!    needed on that host, as determined by the power balancer
//!    pre-characterization runs. The total decreased power is now
//!    considered deallocated.
//! 3. Uniformly distribute the deallocated power among hosts that need more
//!    power to meet their characterized performance, at most up to the
//!    characterized power. Repeat until no deallocated power remains, or
//!    all hosts have been assigned their needed power.
//! 4. If there is a power surplus, allocate the remainder across all hosts
//!    with a weighted distribution. The weight of each host is determined
//!    by the distance from the host's minimum settable power limit to the
//!    host's allocated power from previous steps.

use crate::allocation::{uniform_fill_to_targets, weighted_headroom_distribute, Allocation};
use crate::characterization::JobChar;
use crate::policies::minimize_waste::split_by_jobs;
use crate::policy::{PolicyCtx, PolicyKind, PowerPolicy};
use pmstack_simhw::Watts;

/// System-aware *and* application-aware power sharing across and within
/// jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedAdaptive;

impl PowerPolicy for MixedAdaptive {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MixedAdaptive
    }

    fn system_aware(&self) -> bool {
        true
    }

    fn application_aware(&self) -> bool {
        true
    }

    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation {
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        assert!(n > 0, "allocation over an empty mix");

        // Step 1: uniform across all hosts of all jobs.
        let share = ctx.clamp(ctx.system_budget / n as f64);

        // Step 2: trim to balancer-characterized needed power; pool the
        // deallocated watts.
        let targets: Vec<Watts> = jobs
            .iter()
            .flat_map(|j| j.hosts.iter().map(|h| ctx.clamp(h.needed)))
            .collect();
        let mut caps: Vec<Watts> = targets.iter().map(|&t| share.min(t)).collect();
        let mut pool = share * n as f64 - caps.iter().copied().sum::<Watts>();

        // Step 3: uniform fill of still-hungry hosts up to needed power.
        pool = uniform_fill_to_targets(&mut caps, &targets, pool);

        // Step 4: surplus spreads over all hosts, weighted by distance from
        // the minimum settable limit.
        let _unspent = weighted_headroom_distribute(&mut caps, ctx.min_node, ctx.tdp_node, pool);

        split_by_jobs(jobs, caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{ctx, job};

    #[test]
    fn shares_power_across_job_boundaries() {
        // Job 0 needs little; job 1 is starving. Unlike JobAdaptive, the
        // freed watts cross the job boundary.
        let jobs = vec![job(2, 160.0, 140.0), job(2, 235.0, 235.0)];
        let alloc = MixedAdaptive.allocate(&ctx(4.0 * 180.0), &jobs);
        assert!((alloc.jobs[0][0].value() - 140.0).abs() < 1e-6);
        // Job 1 hosts: 180 + 40 shared from job 0 = 220 each, still below
        // needed 235.
        assert!((alloc.jobs[1][0].value() - 220.0).abs() < 1e-6);
        assert!((alloc.total().value() - 4.0 * 180.0).abs() < 1e-6);
    }

    #[test]
    fn trims_to_needed_not_used() {
        // Wasteful job: uses 230 but needs 170. MixedAdaptive reclaims down
        // to 170 where MinimizeWaste would stop at 230.
        let jobs = vec![job(1, 230.0, 170.0), job(1, 240.0, 240.0)];
        let alloc = MixedAdaptive.allocate(&ctx(2.0 * 200.0), &jobs);
        assert!((alloc.jobs[0][0].value() - 170.0).abs() < 1e-6);
        assert!((alloc.jobs[1][0].value() - 230.0).abs() < 1e-6);
    }

    #[test]
    fn step3_respects_needed_ceiling_then_step4_spreads_surplus() {
        // Abundant budget: everyone reaches needed; surplus spreads by
        // headroom weight over all hosts.
        let jobs = vec![job(1, 200.0, 150.0), job(1, 220.0, 200.0)];
        let alloc = MixedAdaptive.allocate(&ctx(2.0 * 220.0), &jobs);
        let a = alloc.jobs[0][0].value();
        let b = alloc.jobs[1][0].value();
        // Needed met plus weighted surplus of 90 W: the hot host's weighted
        // share bounces off TDP and reflows to the cool one.
        assert!((b - 240.0).abs() < 1e-6);
        assert!((a - 200.0).abs() < 1e-6);
        assert!((a + b - 440.0).abs() < 1e-6);
    }

    #[test]
    fn min_budget_collapses_to_uniform_like_static() {
        // Budget below everyone's needed power: step 2 trims nothing and
        // the result is the uniform StaticCaps state (the paper notes min-
        // budget cases leave the adaptive policies in their initial state).
        let jobs = vec![job(2, 230.0, 210.0), job(2, 235.0, 220.0)];
        let alloc = MixedAdaptive.allocate(&ctx(4.0 * 160.0), &jobs);
        for cap in alloc.jobs.iter().flatten() {
            assert!((cap.value() - 160.0).abs() < 1e-6);
        }
    }

    #[test]
    fn heterogeneous_hosts_within_a_job_get_differentiated_caps() {
        use crate::characterization::{CharacterizationSource, HostChar, JobChar};
        let j = JobChar {
            hosts: vec![
                HostChar {
                    used: Watts(215.0),
                    needed: Watts(185.0),
                },
                HostChar {
                    used: Watts(232.0),
                    needed: Watts(205.0),
                },
            ],
            source: CharacterizationSource::Analytic,
        };
        let alloc = MixedAdaptive.allocate(&ctx(2.0 * 195.0), &[j]);
        assert!((alloc.jobs[0][0].value() - 185.0).abs() < 1e-6);
        assert!((alloc.jobs[0][1].value() - 205.0).abs() < 1e-6);
    }
}
