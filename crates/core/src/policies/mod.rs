//! The five §III power-management policies.

mod job_adaptive;
mod minimize_waste;
mod mixed_adaptive;
mod precharacterized;
mod static_caps;

pub use job_adaptive::JobAdaptive;
pub use minimize_waste::MinimizeWaste;
pub use mixed_adaptive::MixedAdaptive;
pub use precharacterized::Precharacterized;
pub use static_caps::StaticCaps;

use crate::policy::{PolicyKind, PowerPolicy};

/// Instantiate a policy by kind.
pub fn by_kind(kind: PolicyKind) -> Box<dyn PowerPolicy + Send + Sync> {
    match kind {
        PolicyKind::Precharacterized => Box::new(Precharacterized),
        PolicyKind::StaticCaps => Box::new(StaticCaps),
        PolicyKind::MinimizeWaste => Box::new(MinimizeWaste),
        PolicyKind::JobAdaptive => Box::new(JobAdaptive),
        PolicyKind::MixedAdaptive => Box::new(MixedAdaptive),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::characterization::{CharacterizationSource, HostChar, JobChar};
    use crate::policy::PolicyCtx;
    use pmstack_simhw::Watts;

    /// The Quartz policy context with a given budget.
    pub fn ctx(budget_w: f64) -> PolicyCtx {
        PolicyCtx {
            system_budget: Watts(budget_w),
            min_node: Watts(136.0),
            tdp_node: Watts(240.0),
        }
    }

    /// A job whose hosts all share the same used/needed powers.
    pub fn job(hosts: usize, used_w: f64, needed_w: f64) -> JobChar {
        JobChar {
            hosts: (0..hosts)
                .map(|_| HostChar {
                    used: Watts(used_w),
                    needed: Watts(needed_w),
                })
                .collect(),
            source: CharacterizationSource::Analytic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{ctx, job};
    use super::*;
    use pmstack_simhw::Watts;

    #[test]
    fn factory_covers_all_kinds() {
        for kind in PolicyKind::all() {
            let p = by_kind(kind);
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn awareness_matrix_matches_paper_table() {
        assert!(!by_kind(PolicyKind::Precharacterized).system_aware());
        assert!(!by_kind(PolicyKind::Precharacterized).application_aware());
        assert!(by_kind(PolicyKind::StaticCaps).system_aware());
        assert!(!by_kind(PolicyKind::StaticCaps).application_aware());
        assert!(by_kind(PolicyKind::MinimizeWaste).system_aware());
        assert!(!by_kind(PolicyKind::MinimizeWaste).application_aware());
        assert!(!by_kind(PolicyKind::JobAdaptive).system_aware());
        assert!(by_kind(PolicyKind::JobAdaptive).application_aware());
        assert!(by_kind(PolicyKind::MixedAdaptive).system_aware());
        assert!(by_kind(PolicyKind::MixedAdaptive).application_aware());
    }

    #[test]
    fn every_budget_respecting_policy_stays_within_budget() {
        let jobs = vec![
            job(3, 230.0, 180.0),
            job(3, 200.0, 150.0),
            job(3, 210.0, 210.0),
        ];
        for kind in [
            PolicyKind::StaticCaps,
            PolicyKind::MinimizeWaste,
            PolicyKind::JobAdaptive,
            PolicyKind::MixedAdaptive,
        ] {
            let c = ctx(9.0 * 170.0);
            let alloc = by_kind(kind).allocate(&c, &jobs);
            assert!(
                alloc.total() <= c.system_budget + Watts(1e-6),
                "{kind} total {} exceeds budget {}",
                alloc.total(),
                c.system_budget
            );
            assert!(alloc.within(c.min_node, c.tdp_node), "{kind} out of range");
        }
    }
}
