//! The `JobAdaptive` policy (§III-B).
//!
//! "For the JobAdaptive policy, system power is dynamically shared within
//! jobs to maximize performance, but power cannot be shared across different
//! jobs. In other words, the policy is not full-system-aware. The system
//! power cap is initially distributed uniformly across jobs. Power is
//! further distributed among hosts within each job, based on the
//! performance-aware characterization data. If any of the nodes are assigned
//! a power limit that exceeds an evenly-distributed power cap, then all
//! nodes in the job have their power caps reduced by the percentage of their
//! current power consumption that corrects that violation."
//!
//! Within a job it is exactly what the GEOPM power balancer converges to;
//! across jobs it is blind — the siloed application-aware baseline.

use crate::allocation::{proportional_fit, weighted_headroom_distribute, Allocation};
use crate::characterization::JobChar;
use crate::policies::minimize_waste::split_by_jobs;
use crate::policy::{PolicyCtx, PolicyKind, PowerPolicy};
use pmstack_simhw::Watts;

/// Performance-aware within jobs; no cross-job power sharing.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobAdaptive;

impl PowerPolicy for JobAdaptive {
    fn kind(&self) -> PolicyKind {
        PolicyKind::JobAdaptive
    }

    fn system_aware(&self) -> bool {
        false
    }

    fn application_aware(&self) -> bool {
        true
    }

    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation {
        assert!(!jobs.is_empty(), "allocation over an empty mix");
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        let share = ctx.clamp(ctx.system_budget / n as f64);

        let mut flat: Vec<Watts> = Vec::with_capacity(n);
        for job in jobs {
            // The job's budget is its hosts' uniform shares; no watt of it
            // may come from, or leak to, another job.
            let job_budget = share * job.num_hosts() as f64;
            let needed: Vec<Watts> = job.hosts.iter().map(|h| ctx.clamp(h.needed)).collect();
            let total_needed: Watts = needed.iter().copied().sum();

            let mut caps: Vec<Watts> = if total_needed > job_budget {
                // Violation: scale every host down proportionally to its
                // needed power so the job fits its silo, pinning hosts at
                // the hardware floor as necessary.
                proportional_fit(&needed, job_budget, ctx.min_node, ctx.tdp_node)
            } else {
                needed.clone()
            };

            // Leftover budget stays inside the job, flowing to the hosts
            // that need the most power (headroom-weighted).
            let leftover = job_budget - caps.iter().copied().sum::<Watts>();
            if leftover > Watts(1e-9) {
                weighted_headroom_distribute(&mut caps, ctx.min_node, ctx.tdp_node, leftover);
            }
            flat.extend(caps);
        }
        split_by_jobs(jobs, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterization::{CharacterizationSource, HostChar, JobChar};
    use crate::policies::testutil::{ctx, job};

    #[test]
    fn within_job_distribution_follows_needed_power() {
        let j = JobChar {
            hosts: vec![
                HostChar {
                    used: Watts(220.0),
                    needed: Watts(160.0),
                },
                HostChar {
                    used: Watts(220.0),
                    needed: Watts(200.0),
                },
            ],
            source: CharacterizationSource::Analytic,
        };
        // Budget 2×180 = 360 = total needed: exact fit.
        let alloc = JobAdaptive.allocate(&ctx(2.0 * 180.0), &[j]);
        assert!((alloc.jobs[0][0].value() - 160.0).abs() < 1e-6);
        assert!((alloc.jobs[0][1].value() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn no_power_crosses_job_boundaries() {
        // Job 0 needs little, job 1 is starving: a system-aware policy
        // would transfer; JobAdaptive must not.
        let jobs = vec![job(2, 160.0, 140.0), job(2, 235.0, 235.0)];
        let c = ctx(4.0 * 180.0);
        let alloc = JobAdaptive.allocate(&c, &jobs);
        let job_budget = Watts(2.0 * 180.0);
        assert!(alloc.job_total(0) <= job_budget + Watts(1e-6));
        assert!(alloc.job_total(1) <= job_budget + Watts(1e-6));
        // Job 1 is pinned at its silo even though job 0 cannot use its
        // full share…
        assert!((alloc.job_total(1) - job_budget).abs() < Watts(1e-6));
        assert!(alloc.jobs[1][0] < Watts(235.0), "job 1 stays power-starved");
        // …so the power the mix actually *draws* underutilizes the budget
        // (the Fig. 7 marker-(b) behaviour): job 0's hosts are capped above
        // their 160 W draw.
        let drawn: Watts = alloc
            .jobs
            .iter()
            .zip(&jobs)
            .flat_map(|(caps, j)| caps.iter().zip(&j.hosts).map(|(&c, h)| c.min(h.used)))
            .sum();
        assert!(drawn < c.system_budget - Watts(30.0));
    }

    #[test]
    fn violation_scales_proportionally() {
        let j = JobChar {
            hosts: vec![
                HostChar {
                    used: Watts(240.0),
                    needed: Watts(160.0),
                },
                HostChar {
                    used: Watts(240.0),
                    needed: Watts(240.0),
                },
            ],
            source: CharacterizationSource::Analytic,
        };
        // Budget 2×150 = 300 < needed 400: the naive 0.75 scale would put
        // host 0 below the 136 W floor, so it pins there and host 1 takes
        // the rest of the silo.
        let alloc = JobAdaptive.allocate(&ctx(2.0 * 150.0), &[j]);
        assert!((alloc.jobs[0][0].value() - 136.0).abs() < 1e-6);
        assert!((alloc.jobs[0][1].value() - 164.0).abs() < 1e-6);
        assert!((alloc.job_total(0).value() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn surplus_stays_in_job_weighted_by_headroom() {
        let jobs = vec![job(2, 230.0, 170.0)];
        // Budget 2×200: needed 340, leftover 60 distributed inside the job.
        let alloc = JobAdaptive.allocate(&ctx(2.0 * 200.0), &jobs);
        assert!((alloc.job_total(0).value() - 400.0).abs() < 1e-6);
        // Equal needed ⇒ equal grants.
        assert!((alloc.jobs[0][0].value() - 200.0).abs() < 1e-6);
    }
}
