//! The `MinimizeWaste` policy (§III-B).
//!
//! "MinimizeWaste shares system power across hosts, to minimize unused
//! power budget. This policy is intended to statically emulate the dynamic
//! approach documented in SLURM's real-time power management feature, which
//! is full-system-aware. Our policy first distributes power caps across
//! jobs. It then reduces the budget for low-power jobs to minimize unused
//! (wasted) power budgets, and evenly redistributes power to high-power
//! jobs. The power is removed from and added to jobs based on the observed
//! performance-agnostic power usage (obtained from GEOPM reports) for each
//! workload. Surplus power is redistributed, weighted by the difference
//! between minimum settable power and currently assigned power."
//!
//! Structurally this is the MixedAdaptive procedure driven by *observed*
//! (monitor) power instead of *needed* (balancer) power — system awareness
//! without application awareness.

use crate::allocation::{uniform_fill_to_targets, weighted_headroom_distribute, Allocation};
use crate::characterization::JobChar;
use crate::policy::{PolicyCtx, PolicyKind, PowerPolicy};
use pmstack_simhw::Watts;

/// System-aware, performance-agnostic power sharing (≈ SLURM).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizeWaste;

impl PowerPolicy for MinimizeWaste {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MinimizeWaste
    }

    fn system_aware(&self) -> bool {
        true
    }

    fn application_aware(&self) -> bool {
        false
    }

    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation {
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        assert!(n > 0, "allocation over an empty mix");
        let share = ctx.clamp(ctx.system_budget / n as f64);

        // Targets are the observed (performance-agnostic) per-host powers.
        let targets: Vec<Watts> = jobs
            .iter()
            .flat_map(|j| j.hosts.iter().map(|h| ctx.clamp(h.used)))
            .collect();

        // Step 1+2: uniform shares, trimmed to observed usage; the trimmed
        // watts form the shared surplus.
        let mut caps: Vec<Watts> = targets.iter().map(|&t| share.min(t)).collect();
        let mut pool = share * n as f64 - caps.iter().copied().sum::<Watts>();

        // Step 3: evenly redistribute to hosts observed to draw more than
        // their current cap.
        pool = uniform_fill_to_targets(&mut caps, &targets, pool);

        // Step 4: any remainder spreads by headroom weight.
        let _unspent = weighted_headroom_distribute(&mut caps, ctx.min_node, ctx.tdp_node, pool);

        split_by_jobs(jobs, caps)
    }
}

/// Regroup a flat host vector by job.
pub(crate) fn split_by_jobs(jobs: &[JobChar], caps: Vec<Watts>) -> Allocation {
    let mut iter = caps.into_iter();
    let jobs = jobs
        .iter()
        .map(|j| (&mut iter).take(j.num_hosts()).collect())
        .collect();
    Allocation { jobs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::testutil::{ctx, job};

    #[test]
    fn trims_low_power_jobs_and_feeds_hungry_ones() {
        // Job 0 uses little; job 1 is hungry. Budget = 170 W/host uniform.
        let jobs = vec![job(2, 150.0, 150.0), job(2, 230.0, 230.0)];
        let alloc = MinimizeWaste.allocate(&ctx(4.0 * 170.0), &jobs);
        // Low-power hosts trimmed to observed usage.
        assert!((alloc.jobs[0][0].value() - 150.0).abs() < 1e-6);
        // Hungry hosts get the freed 2×20 W.
        assert!((alloc.jobs[1][0].value() - 190.0).abs() < 1e-6);
        assert!((alloc.total().value() - 4.0 * 170.0).abs() < 1e-6);
    }

    #[test]
    fn surplus_beyond_usage_spreads_by_headroom() {
        // Everyone's usage met with budget to spare.
        let jobs = vec![job(1, 150.0, 150.0), job(1, 200.0, 200.0)];
        let alloc = MinimizeWaste.allocate(&ctx(2.0 * 220.0), &jobs);
        // Pool after meeting usage: 440 - 350 = 90. Headroom weighting
        // favours the hotter host until it saturates at TDP; the reflow
        // then tops up the cooler one.
        let a = alloc.jobs[0][0].value();
        let b = alloc.jobs[1][0].value();
        assert!((a + b - 440.0).abs() < 1e-6);
        assert!((b - 240.0).abs() < 1e-6, "hot host saturates at TDP");
        assert!((a - 200.0).abs() < 1e-6, "cool host absorbs the reflow");
    }

    #[test]
    fn ignores_needed_power_entirely() {
        // Same used, wildly different needed: identical allocations.
        let a = MinimizeWaste.allocate(&ctx(2.0 * 170.0), &[job(2, 210.0, 140.0)]);
        let b = MinimizeWaste.allocate(&ctx(2.0 * 170.0), &[job(2, 210.0, 209.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn scarce_budget_stays_uniform() {
        // Budget below anyone's usage: everyone keeps the uniform share.
        let jobs = vec![job(2, 230.0, 200.0), job(2, 220.0, 210.0)];
        let alloc = MinimizeWaste.allocate(&ctx(4.0 * 150.0), &jobs);
        for cap in alloc.jobs.iter().flatten() {
            assert!((cap.value() - 150.0).abs() < 1e-6);
        }
    }
}
