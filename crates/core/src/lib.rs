//! # pmstack-core — the unified power management stack
//!
//! The paper's contribution: a resource manager and a job runtime sharing
//! one view of power, so that system-level constraints *and* application
//! behaviour both shape where every watt goes.
//!
//! * [`characterization`] — the per-host *used* (monitor) and *needed*
//!   (power-balancer) power data the policies consume, producible either
//!   analytically from the models or by actually running the
//!   `pmstack-runtime` agents (§IV-B).
//! * [`allocation`] — allocation containers and the redistribution
//!   arithmetic shared by the policies (uniform fill, headroom-weighted
//!   spread).
//! * [`policy`] + [`policies`] — the five §III policies:
//!
//!   | policy | system aware | app aware |
//!   |---|---|---|
//!   | [`policies::Precharacterized`] | no | no |
//!   | [`policies::StaticCaps`] | uniform | no |
//!   | [`policies::MinimizeWaste`] | yes | observed power only |
//!   | [`policies::JobAdaptive`] | per-job silo | yes |
//!   | [`policies::MixedAdaptive`] | **yes** | **yes** |
//!
//! * [`evaluate`] — the fast steady-state evaluator for whole workload
//!   mixes under an allocation (what the Fig. 7 / Fig. 8 grids run on).
//! * [`coordinator`] — the end-to-end stack: RM scheduling, per-job runtime
//!   controllers with the appropriate agent, execution-time budget updates
//!   over the runtime endpoint, and full reports; used to validate the
//!   analytic evaluator and to demonstrate the protocol the paper proposes
//!   as future work.
//! * [`resilience`] — typed coordination errors and the record of how the
//!   stack degraded gracefully under injected hardware faults (node death,
//!   stuck RAPL, telemetry dropout).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod characterization;
pub mod coordinator;
pub mod evaluate;
pub mod policies;
pub mod policy;
pub mod resilience;

pub use allocation::Allocation;
pub use characterization::{CharacterizationSource, HostChar, JobChar};
pub use coordinator::{Coordinator, CoordinatorMode, MixRun};
pub use evaluate::{apply_job_runtime, evaluate_mix, JobOutcome, JobSetup, MixEvaluation};
pub use policies::{JobAdaptive, MinimizeWaste, MixedAdaptive, Precharacterized, StaticCaps};
pub use policy::{PolicyCtx, PolicyKind, PowerPolicy};
pub use resilience::{CoordinatorError, ResilienceReport};
