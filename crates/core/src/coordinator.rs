//! The end-to-end unified stack: resource manager + job runtimes.
//!
//! This is the integration the paper argues for: the RM owns the system
//! budget and node leases; per-job runtimes execute the workloads under the
//! caps a [`crate::policy::PowerPolicy`] computed from runtime-provided
//! characterization data.
//!
//! Two modes:
//!
//! * [`CoordinatorMode::Emulated`] — the paper's methodology: policies run
//!   once at job start on pre-characterization data and allocations are
//!   static ("we emulated this execution time behavior by
//!   pre-characterizing our workloads… ahead of time", §VIII).
//! * [`CoordinatorMode::Online`] — the future-work protocol implemented:
//!   mid-run, the RM re-characterizes from *measured* powers and
//!   re-allocates, exercising the execution-time feedback loop end to end.
//!
//! Jobs run in parallel on OS threads (crossbeam scoped), one runtime
//! controller per job, mirroring the real deployment topology.

use crate::allocation::Allocation;
use crate::characterization::{CharacterizationSource, HostChar, JobChar};
use crate::evaluate::JobSetup;
use crate::policy::{PolicyCtx, PowerPolicy};
use pmstack_kernel::KernelConfig;
use pmstack_rm::{FifoScheduler, JobSpec, NodePool, PowerLedger, SchedulerEvent};
use pmstack_runtime::{Agent, Controller, JobPlatform, JobReport};
use pmstack_simhw::{Cluster, Node, PowerModel, Watts};

/// Whether the feedback loop runs once (emulated) or live (online).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorMode {
    /// Allocate once from pre-characterization data.
    Emulated,
    /// Re-characterize from measured power and re-allocate mid-run.
    Online,
}

/// An agent that programs exact per-host caps decided by the RM-side policy
/// and holds them (the emulated-feedback-loop runtime behaviour).
#[derive(Debug, Clone)]
pub struct FixedAllocationAgent {
    caps: Vec<Watts>,
}

impl FixedAllocationAgent {
    /// Hold the given per-host caps.
    pub fn new(caps: Vec<Watts>) -> Self {
        Self { caps }
    }
}

impl Agent for FixedAllocationAgent {
    fn name(&self) -> &'static str {
        "fixed_allocation"
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        assert_eq!(self.caps.len(), platform.num_hosts(), "cap/host mismatch");
        for (h, &cap) in self.caps.iter().enumerate() {
            platform
                .set_host_limit(h, cap)
                .expect("nodes clamp limits into range");
        }
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.caps.iter().copied().sum())
    }
}

/// The result of running a mix through the full stack.
#[derive(Debug, Clone)]
pub struct MixRun {
    /// The allocation the policy produced (final allocation in online mode).
    pub allocation: Allocation,
    /// Per-job runtime reports, mix order.
    pub reports: Vec<JobReport>,
}

impl MixRun {
    /// Mean job elapsed time.
    pub fn mean_elapsed(&self) -> f64 {
        self.reports.iter().map(|r| r.elapsed.value()).sum::<f64>() / self.reports.len() as f64
    }

    /// Total energy across jobs, joules.
    pub fn total_energy(&self) -> f64 {
        self.reports.iter().map(|r| r.energy.value()).sum()
    }
}

/// The unified coordinator.
pub struct Coordinator {
    model: PowerModel,
    node_eps: Vec<f64>,
    jitter_sigma: f64,
    seed: u64,
}

impl Coordinator {
    /// Build over an existing cluster's nodes.
    pub fn new(cluster: &Cluster) -> Self {
        Self {
            model: cluster.model().clone(),
            node_eps: cluster.efficiency_factors(),
            jitter_sigma: 0.0,
            seed: 0,
        }
    }

    /// Enable per-iteration jitter in the job platforms.
    pub fn with_jitter(mut self, sigma: f64, seed: u64) -> Self {
        self.jitter_sigma = sigma;
        self.seed = seed;
        self
    }

    /// Run a mix of `(name, config, node_count)` jobs under `policy` and a
    /// system `budget` for `iterations` bulk-synchronous iterations each.
    pub fn run_mix(
        &self,
        mix: &[(String, KernelConfig, usize)],
        policy: &dyn PowerPolicy,
        budget: Watts,
        iterations: usize,
        mode: CoordinatorMode,
    ) -> MixRun {
        assert!(!mix.is_empty(), "cannot run an empty mix");
        let spec = self.model.spec();
        let ctx = PolicyCtx {
            system_budget: budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };

        // RM: admit all jobs of the mix (they run concurrently, as in the
        // paper's experiments).
        let mut scheduler = FifoScheduler::new(
            NodePool::new(self.node_eps.len()),
            PowerLedger::new(budget),
            budget / self.node_eps.len() as f64,
        );
        let ids: Vec<_> = mix
            .iter()
            .map(|(name, _, nodes)| scheduler.submit(JobSpec::new(name.clone(), *nodes)))
            .collect();
        let events = scheduler.tick();
        assert_eq!(
            events.len(),
            mix.len(),
            "the mix must fit the cluster and budget"
        );

        // Collect each job's granted hosts and their efficiency factors.
        let mut setups: Vec<JobSetup> = Vec::with_capacity(mix.len());
        let mut grants: Vec<Vec<usize>> = Vec::with_capacity(mix.len());
        for (event, (_, config, _)) in events.iter().zip(mix) {
            let SchedulerEvent::Started { nodes, .. } = event else {
                unreachable!("tick only emits Started events");
            };
            let host_ids: Vec<usize> = nodes.iter().map(|n| n.0).collect();
            let host_eps: Vec<f64> = host_ids.iter().map(|&i| self.node_eps[i]).collect();
            setups.push(JobSetup {
                config: *config,
                host_eps,
            });
            grants.push(host_ids);
        }

        // Characterize (pre-characterization data, §IV-B) and allocate.
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, &self.model, &s.host_eps))
            .collect();
        let allocation = policy.allocate(&ctx, &chars);
        for (j, id) in ids.iter().enumerate() {
            // Budget-blind policies may overcommit; the ledger records it
            // faithfully so the violation is observable (Fig. 7 bars >100%).
            let _ = scheduler.ledger_mut().reserve(*id, allocation.job_total(j));
        }

        match mode {
            CoordinatorMode::Emulated => {
                let reports =
                    self.execute_phase(&setups, &grants, &allocation, iterations);
                MixRun {
                    allocation,
                    reports,
                }
            }
            CoordinatorMode::Online => {
                let first = iterations / 2;
                let second = iterations - first;
                let reports1 = self.execute_phase(&setups, &grants, &allocation, first.max(1));

                // Execution-time feedback: measured average power becomes
                // the new "used"; needed cannot exceed what was measured.
                let measured: Vec<JobChar> = chars
                    .iter()
                    .zip(&reports1)
                    .map(|(c, r)| JobChar {
                        hosts: c
                            .hosts
                            .iter()
                            .zip(&r.hosts)
                            .map(|(hc, hr)| HostChar {
                                used: hr.avg_power,
                                needed: hc.needed.min(hr.avg_power),
                            })
                            .collect(),
                        source: CharacterizationSource::Measured,
                    })
                    .collect();
                let allocation2 = policy.allocate(&ctx, &measured);
                let reports2 =
                    self.execute_phase(&setups, &grants, &allocation2, second.max(1));
                let reports = reports1
                    .into_iter()
                    .zip(reports2)
                    .map(|(a, b)| merge_reports(a, b))
                    .collect();
                MixRun {
                    allocation: allocation2,
                    reports,
                }
            }
        }
    }

    /// Run every job of the mix for `iterations`, in parallel, under the
    /// given allocation.
    fn execute_phase(
        &self,
        setups: &[JobSetup],
        grants: &[Vec<usize>],
        allocation: &Allocation,
        iterations: usize,
    ) -> Vec<JobReport> {
        let mut slots: Vec<Option<JobReport>> = (0..setups.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (j, slot) in slots.iter_mut().enumerate() {
                let setup = &setups[j];
                let host_ids = &grants[j];
                let caps = allocation.jobs[j].clone();
                let model = &self.model;
                let jitter = self.jitter_sigma;
                let seed = self.seed.wrapping_add(j as u64);
                scope.spawn(move |_| {
                    let nodes: Vec<Node> = host_ids
                        .iter()
                        .zip(&setup.host_eps)
                        .map(|(&id, &eps)| {
                            Node::new(pmstack_simhw::NodeId(id), model, eps)
                                .expect("eps sampled from a valid profile")
                        })
                        .collect();
                    let mut platform = JobPlatform::new(model.clone(), nodes, setup.config);
                    if jitter > 0.0 {
                        platform = platform.with_jitter(jitter, seed);
                    }
                    let mut controller =
                        Controller::new(platform, FixedAllocationAgent::new(caps));
                    *slot = Some(controller.run(iterations));
                });
            }
        })
        .expect("job thread panicked");
        slots
            .into_iter()
            .map(|s| s.expect("every job produced a report"))
            .collect()
    }
}

/// Combine two phase reports of the same job.
fn merge_reports(mut a: JobReport, b: JobReport) -> JobReport {
    assert_eq!(a.hosts.len(), b.hosts.len());
    a.iterations += b.iterations;
    a.elapsed += b.elapsed;
    a.iteration_times.extend(b.iteration_times);
    a.energy += b.energy;
    a.flops += b.flops;
    for (ha, hb) in a.hosts.iter_mut().zip(b.hosts) {
        let total = ha.energy + hb.energy;
        ha.avg_power = total / a.elapsed;
        ha.energy = total;
        ha.final_limit = hb.final_limit;
        ha.mean_epoch = (ha.mean_epoch + hb.mean_epoch) / 2.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_mix;
    use crate::policies::{MixedAdaptive, StaticCaps};
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, VariationProfile};

    fn cluster(n: usize) -> Cluster {
        Cluster::builder(quartz_spec())
            .nodes(n)
            .variation(VariationProfile::quartz())
            .seed(42)
            .build()
            .unwrap()
    }

    fn small_mix() -> Vec<(String, KernelConfig, usize)> {
        vec![
            (
                "wasteful".into(),
                KernelConfig::new(
                    8.0,
                    VectorWidth::Ymm,
                    WaitingFraction::P75,
                    Imbalance::ThreeX,
                ),
                3,
            ),
            ("hungry".into(), KernelConfig::balanced_ymm(8.0), 3),
        ]
    }

    #[test]
    fn emulated_run_produces_reports_for_every_job() {
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let run = coord.run_mix(
            &small_mix(),
            &MixedAdaptive,
            Watts(6.0 * 190.0),
            30,
            CoordinatorMode::Emulated,
        );
        assert_eq!(run.reports.len(), 2);
        assert!(run.reports.iter().all(|r| r.iterations == 30));
        assert!(run.total_energy() > 0.0);
    }

    #[test]
    fn full_stack_agrees_with_analytic_evaluator() {
        // The RAPL-filter simulation should land close to the steady-state
        // evaluator (the settle transient is a small fraction of the run).
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let mix = small_mix();
        let budget = Watts(6.0 * 190.0);
        let run = coord.run_mix(&mix, &StaticCaps, budget, 60, CoordinatorMode::Emulated);

        let spec = c.model().spec();
        let ctx = PolicyCtx {
            system_budget: budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };
        let eps = c.efficiency_factors();
        let setups = vec![
            JobSetup {
                config: mix[0].1,
                host_eps: eps[0..3].to_vec(),
            },
            JobSetup {
                config: mix[1].1,
                host_eps: eps[3..6].to_vec(),
            },
        ];
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, c.model(), &s.host_eps))
            .collect();
        let alloc = StaticCaps.allocate(&ctx, &chars);
        let eval = evaluate_mix(c.model(), &setups, &alloc, 60, 0.0, 0);

        let full_t = run.mean_elapsed();
        let fast_t = eval.mean_elapsed().value();
        assert!(
            (full_t - fast_t).abs() / fast_t < 0.05,
            "full {full_t} vs analytic {fast_t}"
        );
        let full_e = run.total_energy();
        let fast_e = eval.total_energy().value();
        assert!(
            (full_e - fast_e).abs() / fast_e < 0.05,
            "full {full_e} vs analytic {fast_e}"
        );
    }

    #[test]
    fn online_mode_tightens_allocation_from_measurements() {
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let mix = small_mix();
        let budget = Watts(6.0 * 230.0);
        let emulated = coord.run_mix(&mix, &MixedAdaptive, budget, 40, CoordinatorMode::Emulated);
        let online = coord.run_mix(&mix, &MixedAdaptive, budget, 40, CoordinatorMode::Online);
        // Online re-characterization can only shrink "needed" (measured
        // power bounds it), so it must not waste more energy.
        assert!(online.total_energy() <= emulated.total_energy() * 1.02);
        assert_eq!(online.reports[0].iterations, 40);
    }

    #[test]
    #[should_panic(expected = "must fit the cluster")]
    fn oversubscribed_mix_is_rejected() {
        let c = cluster(4);
        let coord = Coordinator::new(&c);
        coord.run_mix(
            &small_mix(),
            &StaticCaps,
            Watts(4.0 * 200.0),
            5,
            CoordinatorMode::Emulated,
        );
    }
}
