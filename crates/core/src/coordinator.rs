//! The end-to-end unified stack: resource manager + job runtimes.
//!
//! This is the integration the paper argues for: the RM owns the system
//! budget and node leases; per-job runtimes execute the workloads under the
//! caps a [`crate::policy::PowerPolicy`] computed from runtime-provided
//! characterization data.
//!
//! Two modes:
//!
//! * [`CoordinatorMode::Emulated`] — the paper's methodology: policies run
//!   once at job start on pre-characterization data and allocations are
//!   static ("we emulated this execution time behavior by
//!   pre-characterizing our workloads… ahead of time", §VIII).
//! * [`CoordinatorMode::Online`] — the future-work protocol implemented:
//!   mid-run, the RM re-characterizes from *measured* powers and
//!   re-allocates, exercising the execution-time feedback loop end to end.
//!
//! A [`pmstack_simhw::FaultPlan`] can be attached with
//! [`Coordinator::with_fault_plan`]. Faults fire at iteration boundaries
//! inside the job platforms; the coordinator reacts at the phase boundary:
//! dead nodes are drained through [`FifoScheduler::fail_node`] (their watts
//! reclaimed into the system budget), and in online mode the surviving
//! hosts are re-characterized and re-allocated. The whole story is recorded
//! in [`MixRun::resilience`].
//!
//! Jobs run in parallel on OS threads (crossbeam scoped), one runtime
//! controller per job, mirroring the real deployment topology.

use crate::allocation::Allocation;
use crate::characterization::{CharacterizationSource, HostChar, JobChar};
use crate::evaluate::JobSetup;
use crate::policy::{PolicyCtx, PowerPolicy};
use crate::resilience::{slice_plan, CoordinatorError, ResilienceReport};
use pmstack_kernel::KernelConfig;
use pmstack_rm::{FifoScheduler, JobSpec, NodePool, PowerLedger, SchedulerEvent};
use pmstack_runtime::{Agent, Controller, JobPlatform, JobReport};
use pmstack_simhw::{Cluster, FaultPlan, Node, NodeId, PowerModel, Watts};

/// Whether the feedback loop runs once (emulated) or live (online).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorMode {
    /// Allocate once from pre-characterization data.
    Emulated,
    /// Re-characterize from measured power and re-allocate mid-run.
    Online,
}

/// An agent that programs exact per-host caps decided by the RM-side policy
/// and holds them (the emulated-feedback-loop runtime behaviour).
#[derive(Debug, Clone)]
pub struct FixedAllocationAgent {
    caps: Vec<Watts>,
}

impl FixedAllocationAgent {
    /// Hold the given per-host caps.
    pub fn new(caps: Vec<Watts>) -> Self {
        Self { caps }
    }
}

impl Agent for FixedAllocationAgent {
    fn name(&self) -> &'static str {
        "fixed_allocation"
    }

    fn init(&mut self, platform: &mut JobPlatform) {
        // Cap-count/host-count agreement is validated by the coordinator
        // before any thread spawns; here a host refusing its cap (fail-stop
        // dead, transient MSR denial) simply keeps its previous enforced
        // limit and the run continues degraded.
        let hosts = platform.num_hosts();
        for (h, &cap) in self.caps.iter().enumerate().take(hosts) {
            let _ = platform.set_host_limit(h, cap);
        }
    }

    fn budget(&self) -> Option<Watts> {
        Some(self.caps.iter().copied().sum())
    }
}

/// The result of running a mix through the full stack.
#[derive(Debug, Clone)]
pub struct MixRun {
    /// The allocation the policy produced (final allocation in online mode;
    /// hosts that died mid-run report a zero cap).
    pub allocation: Allocation,
    /// Per-job runtime reports, mix order.
    pub reports: Vec<JobReport>,
    /// What the stack observed and did about injected faults.
    pub resilience: ResilienceReport,
}

impl MixRun {
    /// Mean job elapsed time.
    pub fn mean_elapsed(&self) -> f64 {
        self.reports.iter().map(|r| r.elapsed.value()).sum::<f64>() / self.reports.len() as f64
    }

    /// Total energy across jobs, joules.
    pub fn total_energy(&self) -> f64 {
        self.reports.iter().map(|r| r.energy.value()).sum()
    }
}

/// The unified coordinator.
pub struct Coordinator {
    model: PowerModel,
    node_eps: Vec<f64>,
    jitter_sigma: f64,
    seed: u64,
    fault_plan: FaultPlan,
    fast_forward: bool,
}

impl Coordinator {
    /// Build over an existing cluster's nodes.
    pub fn new(cluster: &Cluster) -> Self {
        Self {
            model: cluster.model().clone(),
            node_eps: cluster.efficiency_factors(),
            jitter_sigma: 0.0,
            seed: 0,
            fault_plan: FaultPlan::none(),
            fast_forward: true,
        }
    }

    /// Enable or disable the steady-state fast-forward path in the job
    /// platforms (on by default). Disabling forces every iteration through
    /// the full resolve-and-step pipeline — the reference execution the
    /// determinism suite compares the cached paths against.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Enable per-iteration jitter in the job platforms.
    pub fn with_jitter(mut self, sigma: f64, seed: u64) -> Self {
        self.jitter_sigma = sigma;
        self.seed = seed;
        self
    }

    /// Attach a fault plan. Event host indices are cluster-global node ids;
    /// events against nodes outside the cluster are dropped.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan.restricted_to(self.node_eps.len());
        self
    }

    /// Run a mix of `(name, config, node_count)` jobs under `policy` and a
    /// system `budget` for `iterations` bulk-synchronous iterations each.
    ///
    /// Infallible wrapper over [`Self::try_run_mix`], kept for callers that
    /// treat coordination failures as programming errors; it panics with
    /// the error's message.
    pub fn run_mix(
        &self,
        mix: &[(String, KernelConfig, usize)],
        policy: &dyn PowerPolicy,
        budget: Watts,
        iterations: usize,
        mode: CoordinatorMode,
    ) -> MixRun {
        self.try_run_mix(mix, policy, budget, iterations, mode)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run a mix through the full stack, returning a typed error instead of
    /// panicking when the mix cannot be coordinated.
    pub fn try_run_mix(
        &self,
        mix: &[(String, KernelConfig, usize)],
        policy: &dyn PowerPolicy,
        budget: Watts,
        iterations: usize,
        mode: CoordinatorMode,
    ) -> Result<MixRun, CoordinatorError> {
        let _span = pmstack_obs::span!("core.run_mix.secs");
        if mix.is_empty() {
            return Err(CoordinatorError::EmptyMix);
        }
        let spec = self.model.spec();
        let ctx = PolicyCtx {
            system_budget: budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };

        // RM: admit all jobs of the mix (they run concurrently, as in the
        // paper's experiments).
        let mut scheduler = FifoScheduler::new(
            NodePool::new(self.node_eps.len()),
            PowerLedger::new(budget),
            budget / self.node_eps.len() as f64,
        );
        let ids: Vec<_> = mix
            .iter()
            .map(|(name, _, nodes)| scheduler.submit(JobSpec::new(name.clone(), *nodes)))
            .collect();
        let started: Vec<Vec<NodeId>> = scheduler
            .tick()
            .into_iter()
            .filter_map(|ev| match ev {
                SchedulerEvent::Started { nodes, .. } => Some(nodes),
                _ => None,
            })
            .collect();
        if started.len() != mix.len() {
            return Err(CoordinatorError::MixDoesNotFit {
                submitted: mix.len(),
                admitted: started.len(),
            });
        }

        // Collect each job's granted hosts and their efficiency factors.
        let mut setups: Vec<JobSetup> = Vec::with_capacity(mix.len());
        let mut grants: Vec<Vec<usize>> = Vec::with_capacity(mix.len());
        for (nodes, (_, config, _)) in started.iter().zip(mix) {
            let host_ids: Vec<usize> = nodes.iter().map(|n| n.0).collect();
            let host_eps: Vec<f64> = host_ids.iter().map(|&i| self.node_eps[i]).collect();
            setups.push(JobSetup {
                config: *config,
                host_eps,
            });
            grants.push(host_ids);
        }

        // Characterize (pre-characterization data, §IV-B) and allocate.
        let chars: Vec<JobChar> = pmstack_exec::par_map(&setups, |s| {
            JobChar::analytic(s.config, &self.model, &s.host_eps)
        });
        let allocation = policy.allocate(&ctx, &chars);
        validate_shape(&allocation, &grants)?;
        for (j, id) in ids.iter().enumerate() {
            // Budget-blind policies may overcommit; the ledger records it
            // faithfully so the violation is observable (Fig. 7 bars >100%).
            let _ = scheduler.ledger_mut().reserve(*id, allocation.job_total(j));
        }

        let mut resilience = ResilienceReport {
            injected: self
                .fault_plan
                .events()
                .iter()
                .copied()
                .filter(|e| grants.iter().any(|g| g.contains(&e.host)))
                .collect(),
            ..ResilienceReport::default()
        };

        match mode {
            CoordinatorMode::Emulated => {
                let plans: Vec<FaultPlan> = grants
                    .iter()
                    .map(|g| slice_plan(&self.fault_plan, g, 0, u64::MAX))
                    .collect();
                let (reports, alive) =
                    self.execute_phase(&setups, &grants, &allocation, iterations, &plans);
                // The RM learns of deaths after the fact and drains them so
                // the ledger reflects the surviving capacity.
                for (j, mask) in alive.iter().enumerate() {
                    for (h, &ok) in mask.iter().enumerate() {
                        if !ok {
                            resilience.absorb(scheduler.fail_node(NodeId(grants[j][h])));
                        }
                    }
                }
                resilience.reserved_after = scheduler.ledger().reserved();
                debug_assert!(resilience.reserved_after <= budget + Watts(1e-6));
                Ok(MixRun {
                    allocation,
                    reports,
                    resilience,
                })
            }
            CoordinatorMode::Online => {
                let first = (iterations / 2).max(1);
                let second = (iterations - iterations / 2).max(1);
                let plans1: Vec<FaultPlan> = grants
                    .iter()
                    .map(|g| slice_plan(&self.fault_plan, g, 0, first as u64))
                    .collect();
                let (mut reports, alive1) =
                    self.execute_phase(&setups, &grants, &allocation, first, &plans1);

                // Drain nodes lost in the first window: the scheduler
                // shrinks the owner's grant and the ledger reclaims the
                // dead share into the system budget.
                for (j, mask) in alive1.iter().enumerate() {
                    for (h, &ok) in mask.iter().enumerate() {
                        if !ok {
                            resilience.absorb(scheduler.fail_node(NodeId(grants[j][h])));
                        }
                    }
                }

                // Execution-time feedback over the *survivors*: measured
                // average power becomes the new "used"; needed cannot
                // exceed what was measured.
                let survivors: Vec<Vec<usize>> = alive1
                    .iter()
                    .map(|mask| (0..mask.len()).filter(|&h| mask[h]).collect::<Vec<usize>>())
                    .collect();
                let live_jobs: Vec<usize> = (0..mix.len())
                    .filter(|&j| !survivors[j].is_empty())
                    .collect();
                if live_jobs.is_empty() {
                    return Err(CoordinatorError::AllHostsFailed);
                }
                let measured: Vec<JobChar> = live_jobs
                    .iter()
                    .map(|&j| JobChar {
                        hosts: survivors[j]
                            .iter()
                            .map(|&h| {
                                let hr = &reports[j].hosts[h];
                                HostChar {
                                    used: hr.avg_power,
                                    needed: chars[j].hosts[h].needed.min(hr.avg_power),
                                }
                            })
                            .collect(),
                        source: CharacterizationSource::Measured,
                    })
                    .collect();
                let allocation2 = policy.allocate(&ctx, &measured);
                resilience.reallocated = true;
                let surv_grants: Vec<Vec<usize>> = live_jobs
                    .iter()
                    .map(|&j| survivors[j].iter().map(|&h| grants[j][h]).collect())
                    .collect();
                validate_shape(&allocation2, &surv_grants)?;
                for (k, &j) in live_jobs.iter().enumerate() {
                    let _ = scheduler
                        .ledger_mut()
                        .reserve(ids[j], allocation2.job_total(k));
                }

                let surv_setups: Vec<JobSetup> = live_jobs
                    .iter()
                    .map(|&j| JobSetup {
                        config: setups[j].config,
                        host_eps: survivors[j]
                            .iter()
                            .map(|&h| setups[j].host_eps[h])
                            .collect(),
                    })
                    .collect();
                let plans2: Vec<FaultPlan> = surv_grants
                    .iter()
                    .map(|g| slice_plan(&self.fault_plan, g, first as u64, second as u64))
                    .collect();
                let (reports2, alive2) =
                    self.execute_phase(&surv_setups, &surv_grants, &allocation2, second, &plans2);
                for (k, mask) in alive2.iter().enumerate() {
                    for (h, &ok) in mask.iter().enumerate() {
                        if !ok {
                            resilience.absorb(scheduler.fail_node(NodeId(surv_grants[k][h])));
                        }
                    }
                }
                resilience.reserved_after = scheduler.ledger().reserved();
                debug_assert!(resilience.reserved_after <= budget + Watts(1e-6));

                // Merge the phase reports; a job with no survivors keeps
                // its phase-1 report as its whole story.
                for (k, &j) in live_jobs.iter().enumerate() {
                    let merged =
                        merge_reports(reports[j].clone(), reports2[k].clone(), &survivors[j]);
                    reports[j] = merged;
                }

                // The final allocation, expanded back to the full mix shape
                // with zero caps on dead hosts.
                let mut final_jobs: Vec<Vec<Watts>> =
                    grants.iter().map(|g| vec![Watts::ZERO; g.len()]).collect();
                for (k, &j) in live_jobs.iter().enumerate() {
                    for (b, &h) in survivors[j].iter().enumerate() {
                        final_jobs[j][h] = allocation2.jobs[k][b];
                    }
                }
                Ok(MixRun {
                    allocation: Allocation { jobs: final_jobs },
                    reports,
                    resilience,
                })
            }
        }
    }

    /// Run every job of the mix for `iterations`, fanned out over the
    /// work-stealing pool, under the given allocation and per-job fault
    /// plans (platform-local indices). Each job derives its jitter seed from
    /// its mix position, so results are independent of scheduling order.
    /// Returns the reports plus each job's per-host liveness at phase end.
    fn execute_phase(
        &self,
        setups: &[JobSetup],
        grants: &[Vec<usize>],
        allocation: &Allocation,
        iterations: usize,
        plans: &[FaultPlan],
    ) -> (Vec<JobReport>, Vec<Vec<bool>>) {
        let results = pmstack_exec::par_map_indexed(setups, |j, setup| {
            let host_ids = &grants[j];
            let caps = allocation.jobs[j].clone();
            let plan = plans[j].clone();
            let model = &self.model;
            let nodes: Vec<Node> = host_ids
                .iter()
                .zip(&setup.host_eps)
                .map(|(&id, &eps)| {
                    Node::new(pmstack_simhw::NodeId(id), model, eps)
                        .expect("eps sampled from a valid profile")
                })
                .collect();
            let mut platform =
                JobPlatform::new(model.clone(), nodes, setup.config).with_fault_plan(plan);
            platform.set_fast_forward(self.fast_forward);
            if self.jitter_sigma > 0.0 {
                platform =
                    platform.with_jitter(self.jitter_sigma, self.seed.wrapping_add(j as u64));
            }
            let mut controller = Controller::new(platform, FixedAllocationAgent::new(caps));
            let report = controller.run(iterations);
            let alive: Vec<bool> = (0..report.hosts.len())
                .map(|h| controller.platform().is_host_alive(h))
                .collect();
            (report, alive)
        });
        results.into_iter().unzip()
    }
}

/// Check that the policy produced one cap per granted host.
fn validate_shape(allocation: &Allocation, grants: &[Vec<usize>]) -> Result<(), CoordinatorError> {
    for (j, grant) in grants.iter().enumerate() {
        let caps = allocation.jobs.get(j).map_or(0, Vec::len);
        if caps != grant.len() {
            return Err(CoordinatorError::CapShapeMismatch {
                job: j,
                caps,
                hosts: grant.len(),
            });
        }
    }
    Ok(())
}

/// Combine two phase reports of the same job. `survivors[b]` names the host
/// index of report `a` that host `b` of report `b` continued as (identity
/// when nothing died between the phases). Hosts of `a` absent from
/// `survivors` contribute only their first-phase energy.
fn merge_reports(mut a: JobReport, b: JobReport, survivors: &[usize]) -> JobReport {
    assert_eq!(b.hosts.len(), survivors.len());
    a.iterations += b.iterations;
    a.elapsed += b.elapsed;
    a.iteration_times.extend(b.iteration_times);
    a.energy += b.energy;
    a.flops += b.flops;
    for (bi, &ai) in survivors.iter().enumerate() {
        let ha = &mut a.hosts[ai];
        let hb = &b.hosts[bi];
        let total = ha.energy + hb.energy;
        ha.energy = total;
        ha.final_limit = hb.final_limit;
        ha.mean_epoch = (ha.mean_epoch + hb.mean_epoch) / 2.0;
    }
    // Every host's average re-derives from its total energy over the
    // combined elapsed time (dead hosts simply stop accumulating).
    for h in &mut a.hosts {
        h.avg_power = if a.elapsed.value() > 0.0 {
            h.energy / a.elapsed
        } else {
            Watts::ZERO
        };
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_mix;
    use crate::policies::{MixedAdaptive, StaticCaps};
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::{quartz_spec, VariationProfile};

    fn cluster(n: usize) -> Cluster {
        Cluster::builder(quartz_spec())
            .nodes(n)
            .variation(VariationProfile::quartz())
            .seed(42)
            .build()
            .unwrap()
    }

    fn small_mix() -> Vec<(String, KernelConfig, usize)> {
        vec![
            (
                "wasteful".into(),
                KernelConfig::new(
                    8.0,
                    VectorWidth::Ymm,
                    WaitingFraction::P75,
                    Imbalance::ThreeX,
                ),
                3,
            ),
            ("hungry".into(), KernelConfig::balanced_ymm(8.0), 3),
        ]
    }

    #[test]
    fn emulated_run_produces_reports_for_every_job() {
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let run = coord.run_mix(
            &small_mix(),
            &MixedAdaptive,
            Watts(6.0 * 190.0),
            30,
            CoordinatorMode::Emulated,
        );
        assert_eq!(run.reports.len(), 2);
        assert!(run.reports.iter().all(|r| r.iterations == 30));
        assert!(run.total_energy() > 0.0);
        assert!(run.resilience.clean());
    }

    #[test]
    fn full_stack_agrees_with_analytic_evaluator() {
        // The RAPL-filter simulation should land close to the steady-state
        // evaluator (the settle transient is a small fraction of the run).
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let mix = small_mix();
        let budget = Watts(6.0 * 190.0);
        let run = coord.run_mix(&mix, &StaticCaps, budget, 60, CoordinatorMode::Emulated);

        let spec = c.model().spec();
        let ctx = PolicyCtx {
            system_budget: budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };
        let eps = c.efficiency_factors();
        let setups = vec![
            JobSetup {
                config: mix[0].1,
                host_eps: eps[0..3].to_vec(),
            },
            JobSetup {
                config: mix[1].1,
                host_eps: eps[3..6].to_vec(),
            },
        ];
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, c.model(), &s.host_eps))
            .collect();
        let alloc = StaticCaps.allocate(&ctx, &chars);
        let eval = evaluate_mix(c.model(), &setups, &alloc, 60, 0.0, 0);

        let full_t = run.mean_elapsed();
        let fast_t = eval.mean_elapsed().value();
        assert!(
            (full_t - fast_t).abs() / fast_t < 0.05,
            "full {full_t} vs analytic {fast_t}"
        );
        let full_e = run.total_energy();
        let fast_e = eval.total_energy().value();
        assert!(
            (full_e - fast_e).abs() / fast_e < 0.05,
            "full {full_e} vs analytic {fast_e}"
        );
    }

    #[test]
    fn online_mode_tightens_allocation_from_measurements() {
        let c = cluster(6);
        let coord = Coordinator::new(&c);
        let mix = small_mix();
        let budget = Watts(6.0 * 230.0);
        let emulated = coord.run_mix(&mix, &MixedAdaptive, budget, 40, CoordinatorMode::Emulated);
        let online = coord.run_mix(&mix, &MixedAdaptive, budget, 40, CoordinatorMode::Online);
        // Online re-characterization can only shrink "needed" (measured
        // power bounds it), so it must not waste more energy.
        assert!(online.total_energy() <= emulated.total_energy() * 1.02);
        assert_eq!(online.reports[0].iterations, 40);
    }

    #[test]
    #[should_panic(expected = "must fit the cluster")]
    fn oversubscribed_mix_is_rejected() {
        let c = cluster(4);
        let coord = Coordinator::new(&c);
        coord.run_mix(
            &small_mix(),
            &StaticCaps,
            Watts(4.0 * 200.0),
            5,
            CoordinatorMode::Emulated,
        );
    }

    #[test]
    fn try_run_mix_reports_typed_errors() {
        let c = cluster(4);
        let coord = Coordinator::new(&c);
        let err = coord
            .try_run_mix(&[], &StaticCaps, Watts(800.0), 5, CoordinatorMode::Emulated)
            .unwrap_err();
        assert_eq!(err, CoordinatorError::EmptyMix);
        let err = coord
            .try_run_mix(
                &small_mix(),
                &StaticCaps,
                Watts(4.0 * 200.0),
                5,
                CoordinatorMode::Emulated,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            CoordinatorError::MixDoesNotFit { submitted: 2, .. }
        ));
    }

    #[test]
    fn merge_with_partial_survivors_keeps_dead_host_energy() {
        use pmstack_runtime::HostReport;
        use pmstack_simhw::{Joules, Seconds};
        let host = |h: usize, e: f64| HostReport {
            host: h,
            eps: 1.0,
            avg_power: Watts(100.0),
            energy: Joules(e),
            final_limit: Watts(150.0),
            mean_epoch: Seconds(1.0),
        };
        let a = JobReport {
            agent: "fixed_allocation".into(),
            iterations: 10,
            elapsed: Seconds(10.0),
            iteration_times: vec![Seconds(1.0); 10],
            energy: Joules(3000.0),
            flops: 1e9,
            hosts: vec![host(0, 1000.0), host(1, 1000.0), host(2, 1000.0)],
        };
        let b = JobReport {
            agent: "fixed_allocation".into(),
            iterations: 10,
            elapsed: Seconds(10.0),
            iteration_times: vec![Seconds(1.0); 10],
            energy: Joules(2000.0),
            flops: 1e9,
            hosts: vec![host(0, 1000.0), host(1, 1000.0)],
        };
        // Host 1 died between phases; b's hosts continue a's hosts 0 and 2.
        let merged = merge_reports(a, b, &[0, 2]);
        assert_eq!(merged.iterations, 20);
        assert_eq!(merged.hosts[0].energy, Joules(2000.0));
        assert_eq!(merged.hosts[1].energy, Joules(1000.0), "dead host froze");
        assert_eq!(merged.hosts[2].energy, Joules(2000.0));
        assert!((merged.hosts[1].avg_power.value() - 50.0).abs() < 1e-9);
        assert_eq!(merged.energy, Joules(5000.0));
    }
}
