//! Workload characterization data (§IV-B).
//!
//! The paper's policies consume two numbers per host of each job:
//!
//! * **used power** — average power under no constraint, from a run under
//!   the GEOPM *monitor* agent (metric (a), Fig. 4), and
//! * **needed power** — the steady-state power the *power balancer* agent
//!   settles on under a TDP-scale budget (metric (b), Fig. 5).
//!
//! Both can be produced two ways here, and the tests assert they agree:
//! analytically from the kernel/power models (fast; the evaluation grid
//! path), or empirically by actually running the runtime agents
//! (the paper's methodology, end to end).

use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_runtime::{Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{Node, NodeId, PowerModel, Watts};
use serde::{Deserialize, Serialize};

/// How characterization numbers were produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CharacterizationSource {
    /// Closed-form from the models.
    Analytic,
    /// Measured by running the runtime agents.
    Measured,
}

/// Characterization of one host of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostChar {
    /// Unconstrained average power (monitor agent).
    pub used: Watts,
    /// Minimum power preserving performance (power balancer steady state).
    pub needed: Watts,
}

/// Characterization of one job across its hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobChar {
    /// Per-host data, index-aligned with the job's host list.
    pub hosts: Vec<HostChar>,
    /// Provenance of the data.
    pub source: CharacterizationSource,
}

impl JobChar {
    /// Analytic characterization for `config` on hosts with the given
    /// efficiency factors.
    ///
    /// The monitor run executes at the power-on default limit (TDP), so an
    /// inefficient node's *used* power is capped by what it can draw there;
    /// *needed* can never exceed *used*.
    pub fn analytic(config: KernelConfig, model: &PowerModel, host_eps: &[f64]) -> Self {
        use pmstack_simhw::LoadModel;
        let load = KernelLoad::new(config, model.spec());
        let tdp = model.spec().tdp_per_node();
        let hosts = host_eps
            .iter()
            .map(|&eps| {
                let used = load.operating_point(model, eps, tdp).power;
                HostChar {
                    used,
                    needed: load.needed_power(model, eps).min(used),
                }
            })
            .collect();
        Self {
            hosts,
            source: CharacterizationSource::Analytic,
        }
    }

    /// Measured characterization: run the monitor agent uncapped for the
    /// used power, then the power balancer under a per-node TDP budget for
    /// the needed power — exactly the paper's §IV-B procedure.
    pub fn measured(
        config: KernelConfig,
        model: &PowerModel,
        host_eps: &[f64],
        iterations: usize,
    ) -> Self {
        let spec = model.spec();
        let mk_nodes = || -> Vec<Node> {
            host_eps
                .iter()
                .enumerate()
                .map(|(i, &e)| Node::new(NodeId(i), model, e).expect("valid eps"))
                .collect()
        };

        let monitor_report = Controller::new(
            JobPlatform::new(model.clone(), mk_nodes(), config),
            MonitorAgent,
        )
        .run(iterations);

        let budget = spec.tdp_per_node() * host_eps.len() as f64;
        let balancer_report = Controller::new(
            JobPlatform::new(model.clone(), mk_nodes(), config),
            PowerBalancerAgent::new(budget),
        )
        .run(iterations);

        let hosts = monitor_report
            .hosts
            .iter()
            .zip(&balancer_report.hosts)
            .map(|(m, b)| HostChar {
                used: m.avg_power,
                // The balancer's converged limit is the needed power.
                needed: b.final_limit.min(m.avg_power),
            })
            .collect();
        Self {
            hosts,
            source: CharacterizationSource::Measured,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The job's highest per-host used power (what `Precharacterized`
    /// submits as a cap).
    pub fn max_used(&self) -> Watts {
        self.hosts
            .iter()
            .map(|h| h.used)
            .fold(Watts::ZERO, Watts::max)
    }

    /// Sum of per-host used power.
    pub fn total_used(&self) -> Watts {
        self.hosts.iter().map(|h| h.used).sum()
    }

    /// Sum of per-host needed power.
    pub fn total_needed(&self) -> Watts {
        self.hosts.iter().map(|h| h.needed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::quartz_spec;

    fn model() -> PowerModel {
        PowerModel::new(quartz_spec()).unwrap()
    }

    #[test]
    fn analytic_needed_never_exceeds_used() {
        let m = model();
        for &i in &KernelConfig::heatmap_intensities() {
            for (w, k) in KernelConfig::heatmap_columns() {
                let c = JobChar::analytic(
                    KernelConfig::new(i, VectorWidth::Ymm, w, k),
                    &m,
                    &[0.94, 1.0, 1.07],
                );
                for h in &c.hosts {
                    assert!(h.needed <= h.used + Watts(1e-9), "I={i} {w} {k}");
                }
            }
        }
    }

    #[test]
    fn measured_matches_analytic_within_balancer_step() {
        let m = model();
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
        let analytic = JobChar::analytic(config, &m, &[1.0]);
        let measured = JobChar::measured(config, &m, &[1.0], 120);
        let a = &analytic.hosts[0];
        let me = &measured.hosts[0];
        assert!(
            (a.used.value() - me.used.value()).abs() < 5.0,
            "used: analytic {} vs measured {}",
            a.used,
            me.used
        );
        assert!(
            (a.needed.value() - me.needed.value()).abs() < 10.0,
            "needed: analytic {} vs measured {}",
            a.needed,
            me.needed
        );
    }

    #[test]
    fn aggregates() {
        let c = JobChar {
            hosts: vec![
                HostChar {
                    used: Watts(200.0),
                    needed: Watts(180.0),
                },
                HostChar {
                    used: Watts(220.0),
                    needed: Watts(190.0),
                },
            ],
            source: CharacterizationSource::Analytic,
        };
        assert_eq!(c.max_used(), Watts(220.0));
        assert_eq!(c.total_used(), Watts(420.0));
        assert_eq!(c.total_needed(), Watts(370.0));
        assert_eq!(c.num_hosts(), 2);
    }

    #[test]
    fn inefficient_hosts_characterize_hotter() {
        let m = model();
        let c = JobChar::analytic(KernelConfig::balanced_ymm(16.0), &m, &[0.94, 1.07]);
        assert!(c.hosts[1].used > c.hosts[0].used);
        assert!(c.hosts[1].needed > c.hosts[0].needed);
    }
}
