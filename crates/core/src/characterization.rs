//! Workload characterization data (§IV-B).
//!
//! The paper's policies consume two numbers per host of each job:
//!
//! * **used power** — average power under no constraint, from a run under
//!   the GEOPM *monitor* agent (metric (a), Fig. 4), and
//! * **needed power** — the steady-state power the *power balancer* agent
//!   settles on under a TDP-scale budget (metric (b), Fig. 5).
//!
//! Both can be produced two ways here, and the tests assert they agree:
//! analytically from the kernel/power models (fast; the evaluation grid
//! path), or empirically by actually running the runtime agents
//! (the paper's methodology, end to end).

use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_runtime::{Controller, JobPlatform, MonitorAgent, PowerBalancerAgent};
use pmstack_simhw::{ClassId, ClassModels, Node, NodeId, PowerModel, Watts};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// Memo key for characterization results: the kernel configuration and the
/// host efficiency factors by f64 bit pattern, a fingerprint of the machine
/// spec, and the iteration count for measured runs (`None` = analytic).
///
/// Both characterization paths are pure functions of exactly these inputs —
/// the analytic one by construction, the measured one because the runtime
/// agents are deterministic and [`JobChar::measured`] takes no jitter — so
/// results can be shared across every grid cell that characterizes the same
/// job on the same hosts (in a 90-cell evaluation grid each (mix, job)
/// pair recurs once per budget level × policy).
#[derive(PartialEq, Eq, Hash)]
struct CharKey {
    intensity: u64,
    vector: pmstack_kernel::VectorWidth,
    waiting: pmstack_kernel::WaitingFraction,
    imbalance: pmstack_kernel::Imbalance,
    bytes_per_rank: u64,
    config_iterations: usize,
    eps: Vec<u64>,
    spec_fp: u64,
    measured_iterations: Option<usize>,
}

impl CharKey {
    fn new(
        config: &KernelConfig,
        model: &PowerModel,
        host_eps: &[f64],
        measured_iterations: Option<usize>,
    ) -> Self {
        let spec = model.spec();
        let mut h = DefaultHasher::new();
        spec.name.hash(&mut h);
        spec.sockets_per_node.hash(&mut h);
        spec.cores_per_socket.hash(&mut h);
        spec.cores_used_per_node.hash(&mut h);
        for v in [
            spec.f_min.value(),
            spec.f_base.value(),
            spec.f_turbo.value(),
            spec.f_step.value(),
            spec.tdp_per_socket.value(),
            spec.min_rapl_per_socket.value(),
            spec.alpha,
            spec.uncore_per_socket.value(),
            spec.leak_per_core.value(),
            spec.dram_bw_bytes_per_s,
            spec.poll_freq_floor.value(),
        ] {
            v.to_bits().hash(&mut h);
        }
        Self {
            intensity: config.intensity.to_bits(),
            vector: config.vector,
            waiting: config.waiting,
            imbalance: config.imbalance,
            bytes_per_rank: config.bytes_per_rank.to_bits(),
            config_iterations: config.iterations,
            eps: host_eps.iter().map(|e| e.to_bits()).collect(),
            spec_fp: h.finish(),
            measured_iterations,
        }
    }
}

/// Process-wide characterization memo. Entries are complete [`JobChar`]s;
/// lookups clone (a host vector copy, orders of magnitude cheaper than
/// re-characterizing — especially for measured runs, which execute the
/// monitor and balancer agents end to end).
static CHAR_CACHE: OnceLock<Mutex<HashMap<CharKey, JobChar>>> = OnceLock::new();

fn char_cached(key: CharKey, compute: impl FnOnce() -> JobChar) -> JobChar {
    static MEMO_HIT: pmstack_obs::StaticCounter =
        pmstack_obs::StaticCounter::new("core.char.memo_hit");
    static MEMO_MISS: pmstack_obs::StaticCounter =
        pmstack_obs::StaticCounter::new("core.char.memo_miss");
    let cache = CHAR_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("char cache poisoned").get(&key) {
        MEMO_HIT.inc();
        return hit.clone();
    }
    MEMO_MISS.inc();
    // Compute outside the lock: measured characterization is slow and other
    // threads should not serialize behind it.
    let fresh = compute();
    cache
        .lock()
        .expect("char cache poisoned")
        .entry(key)
        .or_insert(fresh)
        .clone()
}

/// How characterization numbers were produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CharacterizationSource {
    /// Closed-form from the models.
    Analytic,
    /// Measured by running the runtime agents.
    Measured,
}

/// Characterization of one host of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostChar {
    /// Unconstrained average power (monitor agent).
    pub used: Watts,
    /// Minimum power preserving performance (power balancer steady state).
    pub needed: Watts,
}

/// Characterization of one job across its hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobChar {
    /// Per-host data, index-aligned with the job's host list.
    pub hosts: Vec<HostChar>,
    /// Provenance of the data.
    pub source: CharacterizationSource,
}

impl JobChar {
    /// Analytic characterization for `config` on hosts with the given
    /// efficiency factors.
    ///
    /// The monitor run executes at the power-on default limit (TDP), so an
    /// inefficient node's *used* power is capped by what it can draw there;
    /// *needed* can never exceed *used*.
    pub fn analytic(config: KernelConfig, model: &PowerModel, host_eps: &[f64]) -> Self {
        char_cached(CharKey::new(&config, model, host_eps, None), || {
            use pmstack_simhw::LoadModel;
            let load = KernelLoad::shared(config, model.spec());
            let tdp = model.spec().tdp_per_node();
            let hosts = host_eps
                .iter()
                .map(|&eps| {
                    let used = load.operating_point(model, eps, tdp).power;
                    HostChar {
                        used,
                        needed: load.needed_power(model, eps).min(used),
                    }
                })
                .collect();
            Self {
                hosts,
                source: CharacterizationSource::Analytic,
            }
        })
    }

    /// Analytic characterization of one job across a *heterogeneous* fleet:
    /// each host is characterized against its own node class's power model,
    /// so the same application yields different used/needed numbers on a
    /// high-TDP class than on an efficiency class — the per-(app, class)
    /// pairing the paper's application-aware policies consume.
    ///
    /// Hosts are grouped by class and each group funnels through
    /// [`JobChar::analytic`], so every (app, class, eps-set) triple lands in
    /// the same process-wide memo the homogeneous path uses (the machine
    /// spec is already part of the key). A one-class fleet therefore
    /// produces results bit-identical to the homogeneous constructor.
    ///
    /// # Panics
    /// If `membership` and `host_eps` lengths differ, or a class index is
    /// out of range for `models`.
    pub fn analytic_classed(
        config: KernelConfig,
        models: &ClassModels,
        membership: &[ClassId],
        host_eps: &[f64],
    ) -> Self {
        assert_eq!(
            membership.len(),
            host_eps.len(),
            "one class per characterized host"
        );
        // Group host indices by class, preserving fleet order within each
        // group so the per-class results scatter back deterministically.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); models.len()];
        for (h, c) in membership.iter().enumerate() {
            groups[c.0].push(h);
        }
        let mut hosts = vec![
            HostChar {
                used: Watts::ZERO,
                needed: Watts::ZERO,
            };
            host_eps.len()
        ];
        for (c, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let eps: Vec<f64> = group.iter().map(|&h| host_eps[h]).collect();
            let class_char = Self::analytic(config, models.model(ClassId(c)), &eps);
            for (&h, hc) in group.iter().zip(&class_char.hosts) {
                hosts[h] = *hc;
            }
        }
        Self {
            hosts,
            source: CharacterizationSource::Analytic,
        }
    }

    /// Measured characterization: run the monitor agent uncapped for the
    /// used power, then the power balancer under a per-node TDP budget for
    /// the needed power — exactly the paper's §IV-B procedure.
    pub fn measured(
        config: KernelConfig,
        model: &PowerModel,
        host_eps: &[f64],
        iterations: usize,
    ) -> Self {
        char_cached(
            CharKey::new(&config, model, host_eps, Some(iterations)),
            || Self::measured_uncached(config, model, host_eps, iterations),
        )
    }

    /// Measured characterization for a batch of jobs, fanned out over the
    /// work-stealing pool (each item is two full agent runs, the most
    /// expensive characterization unit in the stack). Results are in input
    /// order and land in the same memo the scalar constructors use.
    pub fn measured_batch(
        jobs: &[(KernelConfig, Vec<f64>)],
        model: &PowerModel,
        iterations: usize,
    ) -> Vec<Self> {
        pmstack_exec::par_map(jobs, |(config, host_eps)| {
            Self::measured(*config, model, host_eps, iterations)
        })
    }

    fn measured_uncached(
        config: KernelConfig,
        model: &PowerModel,
        host_eps: &[f64],
        iterations: usize,
    ) -> Self {
        let spec = model.spec();
        let mk_nodes = || -> Vec<Node> {
            host_eps
                .iter()
                .enumerate()
                .map(|(i, &e)| Node::new(NodeId(i), model, e).expect("valid eps"))
                .collect()
        };

        let monitor_report = Controller::new(
            JobPlatform::new(model.clone(), mk_nodes(), config),
            MonitorAgent,
        )
        .run(iterations);

        let budget = spec.tdp_per_node() * host_eps.len() as f64;
        let balancer_report = Controller::new(
            JobPlatform::new(model.clone(), mk_nodes(), config),
            PowerBalancerAgent::new(budget),
        )
        .run(iterations);

        let hosts = monitor_report
            .hosts
            .iter()
            .zip(&balancer_report.hosts)
            .map(|(m, b)| HostChar {
                used: m.avg_power,
                // The balancer's converged limit is the needed power.
                needed: b.final_limit.min(m.avg_power),
            })
            .collect();
        Self {
            hosts,
            source: CharacterizationSource::Measured,
        }
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The job's highest per-host used power (what `Precharacterized`
    /// submits as a cap).
    pub fn max_used(&self) -> Watts {
        self.hosts
            .iter()
            .map(|h| h.used)
            .fold(Watts::ZERO, Watts::max)
    }

    /// Sum of per-host used power.
    pub fn total_used(&self) -> Watts {
        self.hosts.iter().map(|h| h.used).sum()
    }

    /// Sum of per-host needed power.
    pub fn total_needed(&self) -> Watts {
        self.hosts.iter().map(|h| h.needed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::{Imbalance, VectorWidth, WaitingFraction};
    use pmstack_simhw::quartz_spec;

    fn model() -> PowerModel {
        PowerModel::new(quartz_spec()).unwrap()
    }

    #[test]
    fn analytic_needed_never_exceeds_used() {
        let m = model();
        for &i in &KernelConfig::heatmap_intensities() {
            for (w, k) in KernelConfig::heatmap_columns() {
                let c = JobChar::analytic(
                    KernelConfig::new(i, VectorWidth::Ymm, w, k),
                    &m,
                    &[0.94, 1.0, 1.07],
                );
                for h in &c.hosts {
                    assert!(h.needed <= h.used + Watts(1e-9), "I={i} {w} {k}");
                }
            }
        }
    }

    #[test]
    fn measured_matches_analytic_within_balancer_step() {
        let m = model();
        let config =
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX);
        let analytic = JobChar::analytic(config, &m, &[1.0]);
        let measured = JobChar::measured(config, &m, &[1.0], 120);
        let a = &analytic.hosts[0];
        let me = &measured.hosts[0];
        assert!(
            (a.used.value() - me.used.value()).abs() < 5.0,
            "used: analytic {} vs measured {}",
            a.used,
            me.used
        );
        assert!(
            (a.needed.value() - me.needed.value()).abs() < 10.0,
            "needed: analytic {} vs measured {}",
            a.needed,
            me.needed
        );
    }

    #[test]
    fn aggregates() {
        let c = JobChar {
            hosts: vec![
                HostChar {
                    used: Watts(200.0),
                    needed: Watts(180.0),
                },
                HostChar {
                    used: Watts(220.0),
                    needed: Watts(190.0),
                },
            ],
            source: CharacterizationSource::Analytic,
        };
        assert_eq!(c.max_used(), Watts(220.0));
        assert_eq!(c.total_used(), Watts(420.0));
        assert_eq!(c.total_needed(), Watts(370.0));
        assert_eq!(c.num_hosts(), 2);
    }

    #[test]
    fn characterization_memo_hits_are_identical() {
        let m = model();
        let config = KernelConfig::balanced_ymm(8.0);
        let a = JobChar::analytic(config, &m, &[0.94, 1.0]);
        let b = JobChar::analytic(config, &m, &[0.94, 1.0]);
        assert_eq!(a, b);
        // Different hosts key differently.
        let c = JobChar::analytic(config, &m, &[0.94, 1.01]);
        assert_ne!(a.hosts, c.hosts);
        // Measured results memoize on iteration count too.
        let m1 = JobChar::measured(config, &m, &[1.0], 40);
        let m2 = JobChar::measured(config, &m, &[1.0], 40);
        assert_eq!(m1, m2);
    }

    #[test]
    fn measured_batch_matches_scalar_measured() {
        let m = model();
        let jobs = vec![
            (KernelConfig::balanced_ymm(8.0), vec![1.0]),
            (KernelConfig::balanced_ymm(0.5), vec![0.97, 1.03]),
        ];
        let batch = JobChar::measured_batch(&jobs, &m, 40);
        assert_eq!(batch.len(), 2);
        for ((config, eps), got) in jobs.iter().zip(&batch) {
            assert_eq!(*got, JobChar::measured(*config, &m, eps, 40));
        }
    }

    #[test]
    fn one_class_classed_characterization_matches_homogeneous() {
        use pmstack_simhw::NodeClass;
        let config = KernelConfig::balanced_ymm(8.0);
        let models = ClassModels::new(&[NodeClass::pkg_only("quartz", quartz_spec())]).unwrap();
        let eps = [0.94, 1.0, 1.07];
        let classed = JobChar::analytic_classed(config, &models, &[ClassId(0); 3], &eps);
        let plain = JobChar::analytic(config, &model(), &eps);
        for (a, b) in classed.hosts.iter().zip(&plain.hosts) {
            assert_eq!(a.used.value().to_bits(), b.used.value().to_bits());
            assert_eq!(a.needed.value().to_bits(), b.needed.value().to_bits());
        }
    }

    #[test]
    fn classes_characterize_the_same_app_differently() {
        let config = KernelConfig::balanced_ymm(16.0);
        let models = ClassModels::new(&pmstack_simhw::standard_classes()).unwrap();
        // One host of each class at identical eps: the app's power numbers
        // must track the class, not just the host.
        let membership = [ClassId(0), ClassId(1), ClassId(2)];
        let c = JobChar::analytic_classed(config, &models, &membership, &[1.0; 3]);
        let used: Vec<f64> = c.hosts.iter().map(|h| h.used.value()).collect();
        // skylake_sp (150 W/socket) runs the app hotter than quartz
        // (120 W/socket); single-socket stout runs it far cooler.
        assert!(
            used[1] > used[0],
            "skylake {} ≤ quartz {}",
            used[1],
            used[0]
        );
        assert!(used[2] < used[0], "stout {} ≥ quartz {}", used[2], used[0]);
        for h in &c.hosts {
            assert!(h.needed <= h.used + Watts(1e-9));
        }
    }

    #[test]
    fn classed_characterization_scatters_back_in_fleet_order() {
        let config = KernelConfig::balanced_ymm(8.0);
        let models = ClassModels::new(&pmstack_simhw::standard_classes()).unwrap();
        // Interleaved membership: results must land on their own hosts.
        let membership = [ClassId(2), ClassId(0), ClassId(2), ClassId(0)];
        let eps = [1.0, 0.96, 1.04, 1.0];
        let c = JobChar::analytic_classed(config, &models, &membership, &eps);
        let quartz = JobChar::analytic(config, models.model(ClassId(0)), &[0.96, 1.0]);
        let stout = JobChar::analytic(config, models.model(ClassId(2)), &[1.0, 1.04]);
        assert_eq!(c.hosts[1], quartz.hosts[0]);
        assert_eq!(c.hosts[3], quartz.hosts[1]);
        assert_eq!(c.hosts[0], stout.hosts[0]);
        assert_eq!(c.hosts[2], stout.hosts[1]);
    }

    #[test]
    fn inefficient_hosts_characterize_hotter() {
        let m = model();
        let c = JobChar::analytic(KernelConfig::balanced_ymm(16.0), &m, &[0.94, 1.07]);
        assert!(c.hosts[1].used > c.hosts[0].used);
        assert!(c.hosts[1].needed > c.hosts[0].needed);
    }
}
