//! The policy interface.

use crate::allocation::Allocation;
use crate::characterization::JobChar;
use pmstack_simhw::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster-level context a policy allocates within.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyCtx {
    /// The system-wide power budget (§V-C).
    pub system_budget: Watts,
    /// Minimum settable node power limit.
    pub min_node: Watts,
    /// Node TDP (maximum cap the policies program).
    pub tdp_node: Watts,
}

impl PolicyCtx {
    /// Clamp one cap into the settable range.
    pub fn clamp(&self, cap: Watts) -> Watts {
        cap.clamp(self.min_node, self.tdp_node)
    }
}

/// Enumeration of the five §III policies (handy for grids and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// User-submitted static cap from a pre-characterization run.
    Precharacterized,
    /// Uniform system share, performance-agnostic.
    StaticCaps,
    /// System-aware, performance-agnostic reallocation (≈ SLURM).
    MinimizeWaste,
    /// Performance-aware within jobs, no cross-job sharing.
    JobAdaptive,
    /// The paper's contribution: system-aware and performance-aware.
    MixedAdaptive,
}

impl PolicyKind {
    /// All five, in the paper's presentation order.
    pub fn all() -> [Self; 5] {
        [
            Self::Precharacterized,
            Self::StaticCaps,
            Self::MinimizeWaste,
            Self::JobAdaptive,
            Self::MixedAdaptive,
        ]
    }

    /// The four dynamic policies compared against `StaticCaps` in Fig. 8.
    pub fn dynamic() -> [Self; 3] {
        [Self::MinimizeWaste, Self::JobAdaptive, Self::MixedAdaptive]
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Precharacterized => "Precharacterized",
            Self::StaticCaps => "StaticCaps",
            Self::MinimizeWaste => "MinimizeWaste",
            Self::JobAdaptive => "JobAdaptive",
            Self::MixedAdaptive => "MixedAdaptive",
        })
    }
}

/// A system power-management policy: given per-job characterization data and
/// a system budget, produce per-host node power caps.
pub trait PowerPolicy {
    /// The policy's identity.
    fn kind(&self) -> PolicyKind;

    /// Whether the policy sees (and respects) the system-wide budget.
    fn system_aware(&self) -> bool;

    /// Whether the policy uses performance-aware (balancer) data.
    fn application_aware(&self) -> bool;

    /// Compute the allocation.
    fn allocate(&self, ctx: &PolicyCtx, jobs: &[JobChar]) -> Allocation;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_clamps_into_range() {
        let ctx = PolicyCtx {
            system_budget: Watts(1000.0),
            min_node: Watts(136.0),
            tdp_node: Watts(240.0),
        };
        assert_eq!(ctx.clamp(Watts(50.0)), Watts(136.0));
        assert_eq!(ctx.clamp(Watts(500.0)), Watts(240.0));
        assert_eq!(ctx.clamp(Watts(200.0)), Watts(200.0));
    }

    #[test]
    fn kind_display_names_match_paper() {
        assert_eq!(PolicyKind::MixedAdaptive.to_string(), "MixedAdaptive");
        assert_eq!(PolicyKind::all().len(), 5);
        assert_eq!(PolicyKind::dynamic().len(), 3);
    }
}
