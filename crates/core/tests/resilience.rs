//! End-to-end resilience acceptance tests: a deterministic fault plan fired
//! mid-run against the full stack must degrade the mix, never crash it —
//! the ledger stays within the system budget, dead nodes are drained, and
//! (online mode) the surviving hosts are re-characterized and re-allocated.

use pmstack_core::policies::by_kind;
use pmstack_core::{Coordinator, CoordinatorError, CoordinatorMode, MixedAdaptive, PolicyKind};
use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use pmstack_simhw::{faults, quartz_spec, Cluster, FaultPlan, VariationProfile, Watts};

fn cluster(n: usize) -> Cluster {
    Cluster::builder(quartz_spec())
        .nodes(n)
        .variation(VariationProfile::quartz())
        .seed(42)
        .build()
        .unwrap()
}

fn mix() -> Vec<(String, KernelConfig, usize)> {
    vec![
        (
            "wasteful".into(),
            KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P75, Imbalance::TwoX),
            3,
        ),
        ("hungry".into(), KernelConfig::balanced_ymm(8.0), 3),
    ]
}

#[test]
fn online_mode_reallocates_survivors_after_a_node_death() {
    // Node 3 (held by the second job) dies at iteration 8 of 40 — inside
    // the first online window, so the re-characterization step sees the
    // shrunken job.
    let c = cluster(6);
    let budget = Watts(6.0 * 190.0);
    let plan = FaultPlan::scripted(vec![faults::kill(3, 8)]);
    let coord = Coordinator::new(&c).with_fault_plan(plan);
    let run = coord
        .try_run_mix(&mix(), &MixedAdaptive, budget, 40, CoordinatorMode::Online)
        .expect("a node death must not fail the mix");

    assert_eq!(run.reports.len(), 2, "every job still reports");
    assert!(run.reports.iter().all(|r| r.iterations == 40));
    assert_eq!(run.resilience.dead_nodes, vec![3]);
    assert!(run.resilience.reallocated);
    assert!(
        run.resilience.reclaimed > Watts::ZERO,
        "the dead node's share returned to the system budget"
    );
    assert!(
        run.resilience.reserved_after <= budget + Watts(1e-6),
        "ledger within budget post-failure: {} vs {}",
        run.resilience.reserved_after,
        budget
    );
    // The final allocation zeroes exactly the dead host and spends only
    // the budget on the survivors.
    let zeros = run
        .allocation
        .jobs
        .iter()
        .flatten()
        .filter(|&&c| c == Watts::ZERO)
        .count();
    assert_eq!(zeros, 1, "one dead host, one zero cap");
    assert!(run.allocation.total() <= budget + Watts(1e-6));
    // The mix still made progress on every surviving host.
    assert!(run.total_energy() > 0.0);
}

#[test]
fn emulated_mode_drains_dead_nodes_into_the_ledger() {
    let c = cluster(6);
    let budget = Watts(6.0 * 190.0);
    let plan = FaultPlan::scripted(vec![faults::kill(0, 5), faults::kill(4, 12)]);
    let coord = Coordinator::new(&c).with_fault_plan(plan);
    let run = coord
        .try_run_mix(
            &mix(),
            &MixedAdaptive,
            budget,
            30,
            CoordinatorMode::Emulated,
        )
        .expect("emulated mode absorbs deaths too");
    let mut dead = run.resilience.dead_nodes.clone();
    dead.sort_unstable();
    assert_eq!(dead, vec![0, 4]);
    assert!(
        !run.resilience.reallocated,
        "emulated mode never re-allocates"
    );
    assert!(run.resilience.reserved_after <= budget + Watts(1e-6));
    assert!(run.resilience.reclaimed > Watts::ZERO);
}

#[test]
fn telemetry_dropout_and_stuck_rapl_degrade_without_any_death() {
    let c = cluster(6);
    let budget = Watts(6.0 * 190.0);
    let plan = FaultPlan::scripted(vec![
        faults::telemetry_dropout(1, 4, 6),
        faults::stuck_rapl(5, 10, Watts(170.0)),
    ]);
    let coord = Coordinator::new(&c).with_fault_plan(plan);
    let run = coord
        .try_run_mix(&mix(), &MixedAdaptive, budget, 30, CoordinatorMode::Online)
        .expect("soft faults must not fail the mix");
    assert!(run.resilience.dead_nodes.is_empty());
    assert!(!run.resilience.injected.is_empty());
    assert!(!run.resilience.clean());
    assert!(run.resilience.reserved_after <= budget + Watts(1e-6));
    assert!(run.reports.iter().all(|r| r.iterations == 30));
}

#[test]
fn every_policy_survives_the_same_fixed_fault_plan() {
    // The EXPERIMENTS.md comparison rests on this: one fixed plan, five
    // policies, zero panics, ledger always within budget.
    let plan = FaultPlan::scripted(vec![
        faults::kill(2, 7),
        faults::telemetry_dropout(4, 3, 5),
        faults::stuck_rapl(0, 10, Watts(180.0)),
    ]);
    let budget = Watts(6.0 * 185.0);
    for kind in PolicyKind::all() {
        let c = cluster(6);
        let coord = Coordinator::new(&c).with_fault_plan(plan.clone());
        let policy = by_kind(kind);
        for mode in [CoordinatorMode::Emulated, CoordinatorMode::Online] {
            let run = coord
                .try_run_mix(&mix(), policy.as_ref(), budget, 30, mode)
                .unwrap_or_else(|e| panic!("{kind} under {mode:?} failed: {e}"));
            assert_eq!(run.resilience.dead_nodes, vec![2], "{kind} {mode:?}");
            assert!(
                run.resilience.reserved_after <= budget + Watts(1e-6),
                "{kind} {mode:?}: {}",
                run.resilience.reserved_after
            );
        }
    }
}

#[test]
fn losing_every_host_is_a_typed_error_not_a_panic() {
    let c = cluster(2);
    let budget = Watts(2.0 * 200.0);
    let plan = FaultPlan::scripted(vec![faults::kill(0, 2), faults::kill(1, 2)]);
    let coord = Coordinator::new(&c).with_fault_plan(plan);
    let single = vec![("doomed".to_string(), KernelConfig::balanced_ymm(8.0), 2)];
    let err = coord
        .try_run_mix(&single, &MixedAdaptive, budget, 20, CoordinatorMode::Online)
        .unwrap_err();
    assert_eq!(err, CoordinatorError::AllHostsFailed);
}
