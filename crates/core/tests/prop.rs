//! Property-based tests of the policy invariants.

use pmstack_core::{
    apply_job_runtime, policies, CharacterizationSource, HostChar, JobChar, PolicyCtx, PolicyKind,
};
use pmstack_simhw::Watts;
use proptest::prelude::*;

/// Arbitrary per-host characterization with needed ≤ used, both within the
/// settable range.
fn arb_host() -> impl Strategy<Value = HostChar> {
    (140.0f64..240.0, 0.6f64..1.0).prop_map(|(used, frac)| HostChar {
        used: Watts(used),
        needed: Watts((used * frac).max(136.0)),
    })
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobChar>> {
    prop::collection::vec(
        prop::collection::vec(arb_host(), 1..6).prop_map(|hosts| JobChar {
            hosts,
            source: CharacterizationSource::Analytic,
        }),
        1..6,
    )
}

fn ctx_for(jobs: &[JobChar], per_host_budget: f64) -> PolicyCtx {
    let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
    PolicyCtx {
        system_budget: Watts(per_host_budget * n as f64),
        min_node: Watts(136.0),
        tdp_node: Watts(240.0),
    }
}

proptest! {
    /// Every budget-respecting policy keeps its total within the budget and
    /// every cap within the hardware's settable range, for any mix and any
    /// feasible budget.
    #[test]
    fn budget_and_range_conservation(jobs in arb_jobs(), per_host in 137.0f64..240.0) {
        let ctx = ctx_for(&jobs, per_host);
        for kind in [
            PolicyKind::StaticCaps,
            PolicyKind::MinimizeWaste,
            PolicyKind::JobAdaptive,
            PolicyKind::MixedAdaptive,
        ] {
            let alloc = policies::by_kind(kind).allocate(&ctx, &jobs);
            prop_assert!(
                alloc.total() <= ctx.system_budget + Watts(1e-6),
                "{kind}: {} > {}",
                alloc.total(),
                ctx.system_budget
            );
            prop_assert!(alloc.within(ctx.min_node, ctx.tdp_node), "{kind} out of range");
            // Shape preservation.
            prop_assert_eq!(alloc.jobs.len(), jobs.len());
            for (a, j) in alloc.jobs.iter().zip(&jobs) {
                prop_assert_eq!(a.len(), j.num_hosts());
            }
        }
    }

    /// MixedAdaptive dominance: no host ends below the smaller of its
    /// needed power and the uniform share (nobody is starved below the
    /// baseline to feed someone else).
    #[test]
    fn mixed_adaptive_never_starves(jobs in arb_jobs(), per_host in 137.0f64..240.0) {
        let ctx = ctx_for(&jobs, per_host);
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        let share = ctx.clamp(ctx.system_budget / n as f64);
        let alloc = policies::by_kind(PolicyKind::MixedAdaptive).allocate(&ctx, &jobs);
        for (caps, job) in alloc.jobs.iter().zip(&jobs) {
            for (cap, host) in caps.iter().zip(&job.hosts) {
                let floor = share.min(ctx.clamp(host.needed));
                prop_assert!(
                    *cap >= floor - Watts(1e-6),
                    "host with needed {} got {cap} under share {share}",
                    host.needed
                );
            }
        }
    }

    /// More budget never shrinks MixedAdaptive's total allocation, and the
    /// total is monotone up to saturation at Σ TDP.
    #[test]
    fn mixed_adaptive_monotone_in_budget(jobs in arb_jobs(), per_host in 140.0f64..230.0) {
        let lo = ctx_for(&jobs, per_host);
        let hi = ctx_for(&jobs, per_host + 8.0);
        let policy = policies::by_kind(PolicyKind::MixedAdaptive);
        let a = policy.allocate(&lo, &jobs);
        let b = policy.allocate(&hi, &jobs);
        prop_assert!(b.total() >= a.total() - Watts(1e-6));
    }

    /// JobAdaptive never moves power across job boundaries: each job's
    /// total stays within its uniform silo.
    #[test]
    fn job_adaptive_silos(jobs in arb_jobs(), per_host in 137.0f64..240.0) {
        let ctx = ctx_for(&jobs, per_host);
        let n: usize = jobs.iter().map(JobChar::num_hosts).sum();
        let share = ctx.clamp(ctx.system_budget / n as f64);
        let alloc = policies::by_kind(PolicyKind::JobAdaptive).allocate(&ctx, &jobs);
        for (j, job) in jobs.iter().enumerate() {
            let silo = share * job.num_hosts() as f64;
            prop_assert!(
                alloc.job_total(j) <= silo + Watts(1e-6),
                "job {j} total {} exceeds silo {}",
                alloc.job_total(j),
                silo
            );
        }
    }

    /// The execution-time balancer transform conserves each job's budget,
    /// never pushes a host above its needed power, and keeps relative
    /// ordering by needed power.
    #[test]
    fn job_runtime_transform_invariants(jobs in arb_jobs(), per_host in 137.0f64..240.0) {
        let ctx = ctx_for(&jobs, per_host);
        let alloc = policies::by_kind(PolicyKind::MixedAdaptive).allocate(&ctx, &jobs);
        let eff = apply_job_runtime(&alloc, &jobs, &ctx);
        for (j, job) in jobs.iter().enumerate() {
            prop_assert!(
                eff.job_total(j) <= alloc.job_total(j) + Watts(1e-6),
                "runtime inflated job {j}"
            );
            for (cap, host) in eff.jobs[j].iter().zip(&job.hosts) {
                prop_assert!(*cap <= ctx.clamp(host.needed) + Watts(1e-6));
                prop_assert!(*cap >= ctx.min_node - Watts(1e-6));
            }
            // Ordering: a host needing more never ends with less.
            for a in 0..job.hosts.len() {
                for b in 0..job.hosts.len() {
                    if job.hosts[a].needed > job.hosts[b].needed {
                        prop_assert!(eff.jobs[j][a] >= eff.jobs[j][b] - Watts(1e-6));
                    }
                }
            }
        }
    }

    /// StaticCaps is invariant to the needed-power column (it is
    /// performance-agnostic by construction).
    #[test]
    fn static_caps_ignores_needed(jobs in arb_jobs(), per_host in 137.0f64..240.0) {
        let ctx = ctx_for(&jobs, per_host);
        let mut distorted = jobs.clone();
        for job in &mut distorted {
            for host in &mut job.hosts {
                host.needed = Watts(136.0);
            }
        }
        let a = policies::by_kind(PolicyKind::StaticCaps).allocate(&ctx, &jobs);
        let b = policies::by_kind(PolicyKind::StaticCaps).allocate(&ctx, &distorted);
        prop_assert_eq!(a, b);
    }
}
