//! # pmstack-exec — the work-stealing parallel-execution substrate
//!
//! GEOPM runs as a tree of concurrent per-node agents and SLURM-style
//! managers batch per-node control asynchronously; the simulation of them
//! should exploit the same concurrency. This crate provides the one
//! primitive the rest of the stack builds on: a scoped, work-stealing
//! worker pool with a [`par_map`] / [`par_map_indexed`] API.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results are always returned in input order, and the
//!    caller decides all randomness (per-item seeds), so a parallel run is
//!    bit-identical to a sequential one regardless of scheduling. The
//!    [`sequential_scope`] helper forces every `par_map` reached from the
//!    current call stack onto one thread, which the determinism tests use
//!    to compare against.
//! 2. **No nested oversubscription.** A task running inside the pool that
//!    itself calls `par_map` runs that inner map inline: the outer fan-out
//!    already owns the hardware. This keeps the grid (90 cells, each of
//!    which evaluates jobs that would *also* like to parallelize) from
//!    spawning quadratically many threads.
//! 3. **Work stealing.** Items are block-distributed across workers; an
//!    idle worker steals the back half of a victim's queue. Cell costs in
//!    the evaluation grid vary by policy and budget level, so static
//!    partitioning alone leaves workers idle.
//!
//! The pool is sized by [`std::thread::available_parallelism`], overridable
//! with the `PMSTACK_THREADS` environment variable (`PMSTACK_THREADS=1`
//! forces sequential execution everywhere).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use pmstack_obs::{StaticCounter, StaticGauge};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Observability: `par_map` invocations that actually spawned the pool.
static PAR_MAP_CALLS: StaticCounter = StaticCounter::new("exec.par_map.calls");
/// Observability: `par_map` invocations that ran inline (sequential path).
static PAR_MAP_INLINE: StaticCounter = StaticCounter::new("exec.par_map.inline");
/// Observability: tasks executed by pool workers (spawned path only).
static TASKS_EXECUTED: StaticCounter = StaticCounter::new("exec.tasks.executed");
/// Observability: tasks obtained by stealing (back-half moves + straggler
/// drains) rather than from the worker's own block.
static TASKS_STOLEN: StaticCounter = StaticCounter::new("exec.tasks.stolen");
/// Observability: worker count of the most recent spawned pool.
static POOL_WORKERS: StaticGauge = StaticGauge::new("exec.pool.workers");

thread_local! {
    /// True while the current thread is a pool worker or inside a
    /// [`sequential_scope`]; `par_map` calls on such a thread run inline.
    static INLINE_ONLY: Cell<bool> = const { Cell::new(false) };
}

/// Number of workers a fresh pool would use: the `PMSTACK_THREADS`
/// environment variable when set (clamped to at least 1), otherwise
/// [`std::thread::available_parallelism`].
///
/// Resolved once per process: `available_parallelism` re-reads the cgroup
/// quota files on every call on Linux, which is far too expensive for the
/// per-iteration call sites in the simulation hot loop.
pub fn workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| match std::env::var("PMSTACK_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// True when a `par_map` issued from the current thread would run inline
/// (inside a pool worker, inside [`sequential_scope`], or on a
/// single-hardware-thread host).
pub fn is_inline() -> bool {
    INLINE_ONLY.with(|f| f.get()) || workers() <= 1
}

/// Run `f` with every [`par_map`] reached from this call stack forced onto
/// the calling thread, in input order — the reference execution the
/// determinism property tests compare the parallel pool against.
pub fn sequential_scope<R>(f: impl FnOnce() -> R) -> R {
    INLINE_ONLY.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Map `f` over `items` on the work-stealing pool, returning results in
/// input order. Falls back to a plain sequential map when the pool would
/// not help (one worker, one item, or already inside the pool).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the item's index — the hook the
/// stack uses to derive deterministic per-item seeds.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_min_workers(items, 1, f)
}

/// Like [`par_map_indexed`], but spawns at least `min_workers` workers even
/// when the host exposes fewer hardware threads (still capped by the item
/// count, and still inline inside [`sequential_scope`] or a pool worker).
///
/// Coarse-grained callers — the replicate sweep fans out whole simulation
/// runs of milliseconds each — use this to keep the work-stealing path (and
/// its metrics) exercised on single-core hosts, where timesharing two
/// workers costs nothing at that granularity.
pub fn par_map_indexed_min_workers<T, R, F>(items: &[T], min_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let w = workers().max(min_workers).min(n);
    // Note: not `is_inline()` — that also folds in the single-core fallback,
    // which `min_workers` exists to override. Only the thread-local flag
    // (inside a worker or a `sequential_scope`) forces the inline path.
    if w <= 1 || INLINE_ONLY.with(|flag| flag.get()) {
        PAR_MAP_INLINE.inc();
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    PAR_MAP_CALLS.inc();
    POOL_WORKERS.set(w as f64);

    // Block-distribute item indices; workers drain their own block from the
    // front and steal the back half of a victim's remaining block.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..w)
        .map(|k| {
            let lo = k * n / w;
            let hi = (k + 1) * n / w;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for me in 0..w {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                INLINE_ONLY.with(|flag| flag.set(true));
                loop {
                    // Own queue first (front: preserves block locality)…
                    let mine = queues[me].lock().expect("queue poisoned").pop_front();
                    let idx = match mine {
                        Some(i) => i,
                        // …then steal the back half of the first non-empty
                        // victim, keeping one item for the victim itself.
                        None => match steal(queues, me) {
                            Some(i) => i,
                            None => break,
                        },
                    };
                    TASKS_EXECUTED.inc();
                    let out = f(idx, &items[idx]);
                    *slots[idx].lock().expect("slot poisoned") = Some(out);
                }
            });
        }
    })
    .expect("pool worker panicked");

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every item mapped")
        })
        .collect()
}

/// Steal work for worker `me`: move the back half of the first non-empty
/// victim queue (scanning round-robin from `me + 1`) onto `me`'s queue and
/// return one stolen index to run immediately.
fn steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    let w = queues.len();
    for off in 1..w {
        let victim = (me + off) % w;
        let mut stolen: VecDeque<usize> = {
            let mut q = queues[victim].lock().expect("queue poisoned");
            let keep = q.len().div_ceil(2);
            if q.len() <= keep && q.len() <= 1 {
                continue;
            }
            q.split_off(keep)
        };
        let first = stolen.pop_front();
        if first.is_some() {
            TASKS_STOLEN.add(1 + stolen.len() as u64);
        }
        if !stolen.is_empty() {
            let mut mine = queues[me].lock().expect("queue poisoned");
            debug_assert!(mine.is_empty());
            *mine = stolen;
        }
        if first.is_some() {
            return first;
        }
    }
    // Nothing left anywhere with >1 item; drain stragglers (queues holding
    // exactly one item whose owner is busy with a long task).
    for off in 1..w {
        let victim = (me + off) % w;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_back() {
            TASKS_STOLEN.inc();
            return Some(i);
        }
    }
    None
}

/// Apply `f` to each element of `items` in parallel, in place. The slice is
/// split into one contiguous chunk per worker (no stealing: mutable access
/// precludes moving items between workers without extra synchronization,
/// and the callers — per-node hardware stepping — are uniform-cost).
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let w = workers().min(n);
    if w <= 1 || INLINE_ONLY.with(|fl| fl.get()) {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(w);
    crossbeam::thread::scope(|scope| {
        for (k, block) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                INLINE_ONLY.with(|flag| flag.set(true));
                for (j, item) in block.iter_mut().enumerate() {
                    f(k * chunk + j, item);
                }
            });
        }
    })
    .expect("pool worker panicked");
}

/// Apply `f` to contiguous chunks of `items` of exactly `chunk_len` elements
/// (the final chunk may be shorter), fanned across the pool. `f` receives the
/// chunk's base index into `items` plus the mutable chunk itself.
///
/// This is the segment-aligned fan-out the sharded `NodeBank` and the
/// controller's per-host accumulators use: by fixing the chunk boundary to a
/// caller-chosen stride (the bank's segment size) instead of deriving it from
/// the worker count, per-chunk state stays congruent with per-segment state
/// no matter how many workers the host exposes. Chunks are grouped so at most
/// one batch per worker is spawned; within a batch chunks run in order on one
/// thread, so elementwise updates stay deterministic.
pub fn par_chunks_mut<T, F>(items: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be at least 1");
    let n = items.len();
    if n == 0 {
        return;
    }
    let chunks = n.div_ceil(chunk_len);
    let w = workers().min(chunks);
    if w <= 1 || INLINE_ONLY.with(|fl| fl.get()) {
        for (k, block) in items.chunks_mut(chunk_len).enumerate() {
            f(k * chunk_len, block);
        }
        return;
    }
    // One batch of whole chunks per worker; a batch boundary is always a
    // chunk boundary.
    let batch = chunks.div_ceil(w) * chunk_len;
    crossbeam::thread::scope(|scope| {
        for (b, block) in items.chunks_mut(batch).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                INLINE_ONLY.with(|flag| flag.set(true));
                for (k, chunk) in block.chunks_mut(chunk_len).enumerate() {
                    f(b * batch + k * chunk_len, chunk);
                }
            });
        }
    })
    .expect("pool worker panicked");
}

/// Observability: jobs executed by service-pool workers.
static SERVICE_EXECUTED: StaticCounter = StaticCounter::new("exec.service.executed");
/// Observability: jobs rejected because the service queue was full.
static SERVICE_REJECTED: StaticCounter = StaticCounter::new("exec.service.rejected");
/// Observability: service jobs that panicked (caught; the worker survives).
static SERVICE_PANICS: StaticCounter = StaticCounter::new("exec.service.panics");

/// A boxed unit of service work.
pub type ServiceJob = Box<dyn FnOnce() + Send + 'static>;

/// Error of [`ServicePool::try_execute`]: the bounded queue is full (or the
/// pool is shutting down) — the caller sheds load instead of blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceFull;

impl std::fmt::Display for ServiceFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("service queue full")
    }
}

impl std::error::Error for ServiceFull {}

struct ServiceState {
    queue: VecDeque<ServiceJob>,
    open: bool,
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    ready: std::sync::Condvar,
    capacity: usize,
}

/// A long-lived worker pool with a *bounded* submission queue — the serving
/// counterpart of [`par_map`]. Where `par_map` fans a known batch out and
/// joins, a `ServicePool` accepts work that arrives over time (the daemon's
/// connections) and pushes back when it cannot keep up: [`Self::try_execute`]
/// fails immediately once `capacity` jobs are queued, which the HTTP server
/// turns into a `503` instead of an unbounded backlog.
///
/// Workers run with the inline flag set, so a [`par_map`] reached from a
/// service job runs sequentially (same no-nested-oversubscription rule as
/// the batch pool). A panicking job is caught and counted; the worker
/// survives, because one bad request must not shrink the pool.
pub struct ServicePool {
    shared: std::sync::Arc<ServiceShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServicePool {
    /// A pool of `workers` threads behind a queue of at most `capacity`
    /// pending jobs (both at least 1).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = std::sync::Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                queue: VecDeque::new(),
                open: true,
            }),
            ready: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        });
        let handles = (0..workers)
            .map(|k| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pmstack-svc-{k}"))
                    .spawn(move || {
                        INLINE_ONLY.with(|flag| flag.set(true));
                        loop {
                            let job = {
                                let mut st = shared.state.lock().expect("service state poisoned");
                                loop {
                                    if let Some(job) = st.queue.pop_front() {
                                        break Some(job);
                                    }
                                    if !st.open {
                                        break None;
                                    }
                                    st = shared.ready.wait(st).expect("service state poisoned");
                                }
                            };
                            let Some(job) = job else { return };
                            SERVICE_EXECUTED.inc();
                            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err()
                            {
                                SERVICE_PANICS.inc();
                            }
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (racy; diagnostics only).
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .queue
            .len()
    }

    /// Enqueue `job` if the queue has room. Never blocks: a full (or
    /// closing) queue returns [`ServiceFull`] so the caller can shed load.
    pub fn try_execute(&self, job: ServiceJob) -> Result<(), ServiceFull> {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        if !st.open || st.queue.len() >= self.shared.capacity {
            drop(st);
            SERVICE_REJECTED.inc();
            return Err(ServiceFull);
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Stop accepting work, run everything already queued, and join the
    /// workers. Called by `Drop` as well, so letting the pool fall out of
    /// scope is a clean shutdown.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.open = false;
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_passes_true_indices() {
        let items = vec!["a"; 257];
        let out = par_map_indexed(&items, |i, _| i);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_work() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_equals_sequential_scope() {
        let items: Vec<u64> = (0..500).collect();
        // A mildly irregular cost profile so stealing actually happens on
        // multi-core hosts.
        let f = |&x: &u64| -> u64 {
            let mut acc = x;
            for _ in 0..(x % 97) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let par = par_map(&items, f);
        let seq = sequential_scope(|| par_map(&items, f));
        assert_eq!(par, seq);
    }

    #[test]
    fn nested_par_map_runs_inline() {
        let outer: Vec<usize> = (0..8).collect();
        let depth_hits = AtomicUsize::new(0);
        let out = par_map(&outer, |&i| {
            // Inside a worker (or on a 1-core host) this must not spawn.
            assert!(workers() <= 1 || is_inline());
            let inner: Vec<usize> = (0..4).collect();
            depth_hits.fetch_add(1, Ordering::Relaxed);
            par_map(&inner, |&j| i * 10 + j)
        });
        assert_eq!(depth_hits.load(Ordering::Relaxed), 8);
        assert_eq!(out[3], vec![30, 31, 32, 33]);
    }

    #[test]
    fn sequential_scope_restores_flag() {
        assert!(!INLINE_ONLY.with(|f| f.get()));
        sequential_scope(|| {
            assert!(is_inline());
        });
        assert!(!INLINE_ONLY.with(|f| f.get()));
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        let mut items = vec![0u64; 1003];
        par_for_each_mut(&mut items, |i, x| *x = i as u64 + 1);
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, i as u64 + 1);
        }
    }

    #[test]
    fn steal_leaves_no_item_behind_under_imbalance() {
        // Front-loaded cost: worker 0's block is 100x the others', so on a
        // multi-core host the rest must steal to finish.
        let items: Vec<u64> = (0..256).collect();
        let out = par_map(&items, |&x| {
            let spin = if x < 32 { 20_000 } else { 200 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x + 1
        });
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn workers_is_at_least_one() {
        assert!(workers() >= 1);
    }

    #[test]
    fn par_chunks_mut_sees_aligned_bases_and_full_coverage() {
        for (n, chunk_len) in [
            (0usize, 4usize),
            (1, 4),
            (9, 4),
            (12, 4),
            (5, 8),
            (1003, 64),
        ] {
            let mut items = vec![0u64; n];
            par_chunks_mut(&mut items, chunk_len, |base, block| {
                assert_eq!(base % chunk_len, 0, "chunk base must be stride-aligned");
                assert!(block.len() <= chunk_len);
                for (j, x) in block.iter_mut().enumerate() {
                    *x = (base + j) as u64 + 1;
                }
            });
            for (i, x) in items.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "n={n} chunk_len={chunk_len} index {i}");
            }
        }
    }

    #[test]
    fn min_workers_spawns_pool_even_on_one_core() {
        pmstack_obs::enable();
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_indexed_min_workers(&items, 2, |i, &x| x * 2 + i as u64);
        let snap = pmstack_obs::snapshot();
        pmstack_obs::disable();
        assert_eq!(
            out,
            items.iter().map(|&x| x * 3).collect::<Vec<_>>(),
            "min-workers pool must preserve input order and indices"
        );
        assert!(snap.counter("exec.par_map.calls").unwrap_or(0) >= 1);
        assert!(snap.counter("exec.tasks.executed").unwrap_or(0) >= 64);
        // Other tests may race their own pools while the recorder is on, so
        // only assert the gauge saw a real pool (≥ the minimum we forced).
        assert!(snap.gauge("exec.pool.workers").unwrap_or(0.0) >= 2.0);
    }

    #[test]
    fn min_workers_still_inline_inside_sequential_scope() {
        let items: Vec<u64> = (0..16).collect();
        let out = sequential_scope(|| {
            assert!(is_inline());
            par_map_indexed_min_workers(&items, 4, |_, &x| x + 1)
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn service_pool_runs_every_accepted_job() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let pool = ServicePool::new(2, 64);
        assert_eq!(pool.workers(), 2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..40 {
            let hits = Arc::clone(&hits);
            pool.try_execute(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.shutdown(); // drains the queue before joining
        assert_eq!(hits.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn service_pool_sheds_load_when_the_queue_is_full() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let pool = ServicePool::new(1, 1);
        let release = Arc::new(AtomicBool::new(false));
        // Occupy the single worker…
        let r = Arc::clone(&release);
        pool.try_execute(Box::new(move || {
            while !r.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        }))
        .unwrap();
        // …fill the one queue slot (the worker may or may not have picked
        // the blocker up yet, so allow one extra accepted job)…
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..8 {
            match pool.try_execute(Box::new(|| {})) {
                Ok(()) => accepted += 1,
                Err(ServiceFull) => rejected += 1,
            }
        }
        assert!(rejected >= 6, "bounded queue must reject overload");
        assert!(accepted <= 2);
        release.store(true, Ordering::Relaxed);
        pool.shutdown();
    }

    #[test]
    fn service_pool_survives_a_panicking_job() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let pool = ServicePool::new(1, 8);
        pool.try_execute(Box::new(|| panic!("bad request")))
            .unwrap();
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        pool.try_execute(Box::new(move || r.store(true, Ordering::Relaxed)))
            .unwrap();
        pool.shutdown();
        assert!(ran.load(Ordering::Relaxed), "worker died with the panic");
    }

    #[test]
    fn service_pool_rejects_after_shutdown_begins() {
        let mut pool = ServicePool::new(1, 4);
        pool.shutdown_inner();
        assert_eq!(pool.try_execute(Box::new(|| {})), Err(ServiceFull));
    }

    #[test]
    fn service_jobs_run_with_par_map_inline() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let pool = ServicePool::new(1, 4);
        let inline = Arc::new(AtomicBool::new(false));
        let i = Arc::clone(&inline);
        pool.try_execute(Box::new(move || i.store(is_inline(), Ordering::Relaxed)))
            .unwrap();
        pool.shutdown();
        assert!(
            inline.load(Ordering::Relaxed),
            "nested par_map on a service worker must run inline"
        );
    }
}
