//! Property-based tests of the observability primitives: histogram merge
//! algebra, count conservation across snapshot/merge, and lossless counter
//! increments under the work-stealing pool.

use pmstack_obs::{Counter, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Shared bucket bounds for the merge properties (strictly increasing).
const BOUNDS: &[f64] = &[0.01, 0.1, 1.0, 10.0];

fn observe_all(values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new(BOUNDS);
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Merge is commutative and associative: counts agree exactly, sums to
    /// floating-point tolerance.
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a in prop::collection::vec(0.0f64..100.0, 0..50),
        b in prop::collection::vec(0.0f64..100.0, 0..50),
        c in prop::collection::vec(0.0f64..100.0, 0..50),
    ) {
        let (sa, sb, sc) = (observe_all(&a), observe_all(&b), observe_all(&c));

        let ab = sa.merge(&sb).unwrap();
        let ba = sb.merge(&sa).unwrap();
        prop_assert_eq!(&ab.counts, &ba.counts);
        prop_assert_eq!(ab.total, ba.total);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-9 * ab.sum.abs().max(1.0));

        let ab_c = ab.merge(&sc).unwrap();
        let a_bc = sa.merge(&sb.merge(&sc).unwrap()).unwrap();
        prop_assert_eq!(&ab_c.counts, &a_bc.counts);
        prop_assert_eq!(ab_c.total, a_bc.total);
        prop_assert!((ab_c.sum - a_bc.sum).abs() <= 1e-9 * ab_c.sum.abs().max(1.0));
    }

    /// Merging conserves observations: the merged snapshot holds exactly
    /// the union of what the parts observed, bucket by bucket, and the
    /// empty snapshot is the identity.
    #[test]
    fn merge_conserves_counts(
        parts in prop::collection::vec(
            prop::collection::vec(0.0f64..100.0, 0..40),
            1..5,
        ),
    ) {
        let snapshots: Vec<HistogramSnapshot> = parts.iter().map(|p| observe_all(p)).collect();
        let mut merged = HistogramSnapshot::empty(BOUNDS);
        for s in &snapshots {
            merged = merged.merge(s).unwrap();
        }
        let all: Vec<f64> = parts.iter().flatten().copied().collect();
        let direct = observe_all(&all);
        prop_assert_eq!(&merged.counts, &direct.counts);
        prop_assert_eq!(merged.total, direct.total);
        prop_assert_eq!(merged.total as usize, all.len());
        prop_assert!((merged.sum - direct.sum).abs() <= 1e-9 * direct.sum.abs().max(1.0));
    }

    /// A counter hammered from every pool worker loses no update: the
    /// final value is exactly tasks x increments-per-task.
    #[test]
    fn concurrent_counter_increments_are_lossless(
        tasks in 1usize..64,
        per_task in 1u64..200,
    ) {
        let counter = Counter::default();
        let items: Vec<usize> = (0..tasks).collect();
        // min_workers = 2 forces a real pool (and its steal path) even on
        // a single-hardware-thread host.
        pmstack_exec::par_map_indexed_min_workers(&items, 2, |_, _| {
            for _ in 0..per_task {
                counter.add(1);
            }
        });
        prop_assert_eq!(counter.get(), tasks as u64 * per_task);
    }
}
