//! The metric primitives: counters, float counters, gauges, and
//! fixed-bucket histograms with mergeable snapshots.
//!
//! Everything here is lock-free on the record path (relaxed atomics; float
//! accumulation is a compare-exchange loop on the bit pattern), because
//! counters are bumped from inside the exec pool's workers concurrently —
//! the property tests prove no update is lost.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A monotonic `f64` counter (watt totals, joules, seconds of work),
/// accumulated through a compare-exchange loop on the stored bit pattern.
#[derive(Debug)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl Default for FloatCounter {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl FloatCounter {
    /// A zeroed float counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram: `bounds.len() + 1` buckets, the last catching
/// everything above the largest bound. Bounds are fixed at registration so
/// snapshots from different processes/phases merge bucket-by-bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be finite and strictly increasing).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            total: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            total: self.total.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of a [`Histogram`]'s state; merges with any snapshot that
/// shares its bucket bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The bucket upper bounds (the final, implicit bucket is `+inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` long.
    pub counts: Vec<u64>,
    /// Sum of every observed value.
    pub sum: f64,
    /// Number of observations.
    pub total: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds` (merge identity).
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Merge two snapshots bucket-by-bucket. Bucket counts and totals add
    /// exactly (associative and commutative — `u64` addition); sums add in
    /// `f64`. Errors when the bucket shapes differ.
    pub fn merge(&self, other: &Self) -> Result<Self, String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "cannot merge histograms with different bounds ({} vs {} buckets)",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        Ok(Self {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
            total: self.total + other.total,
        })
    }

    /// Mean observed value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Upper bound of the highest non-empty bucket (`inf` when the overflow
    /// bucket holds observations; zero when empty) — a coarse maximum.
    pub fn max_bound(&self) -> f64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            None => 0.0,
            Some(i) if i == self.bounds.len() => f64::INFINITY,
            Some(i) => self.bounds[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket 0 (≤ 1.0)
        h.observe(1.0); // bucket 0 (bound is inclusive)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.total, 4);
        assert!((s.sum - 106.5).abs() < 1e-12);
        assert!((s.mean() - 26.625).abs() < 1e-12);
        assert_eq!(s.max_bound(), f64::INFINITY);
    }

    #[test]
    fn merge_conserves_counts_and_rejects_shape_mismatch() {
        let a = {
            let h = Histogram::new(&[1.0]);
            h.observe(0.5);
            h.snapshot()
        };
        let b = {
            let h = Histogram::new(&[1.0]);
            h.observe(2.0);
            h.observe(0.1);
            h.snapshot()
        };
        let m = a.merge(&b).unwrap();
        assert_eq!(m.total, 3);
        assert_eq!(m.counts, vec![2, 1]);
        let other_shape = HistogramSnapshot::empty(&[1.0, 2.0]);
        assert!(a.merge(&other_shape).is_err());
    }

    #[test]
    fn float_counter_accumulates() {
        let c = FloatCounter::new();
        c.add(1.5);
        c.add(2.25);
        assert_eq!(c.get(), 3.75);
    }
}
