//! Snapshot type and its exporters: hand-rolled JSON (the in-tree serde
//! shim is a no-op marker) and Prometheus text exposition format.

use crate::journal::{Event, FieldValue};
use crate::metrics::HistogramSnapshot;
use std::fmt::Write as _;

/// A consistent point-in-time view of every registered metric plus the
/// retained journal, captured by [`crate::snapshot`]. All collections are
/// sorted by metric name so exports are deterministic.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered float counter.
    pub float_counters: Vec<(String, f64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained journal events, oldest first.
    pub events: Vec<Event>,
    /// Events shed by the journal ring before this snapshot.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Value of the counter `name` (`None` when never registered). A
    /// missing counter is *not* the same as a zero one: missing means the
    /// instrumented call site never ran, zero means it ran and recorded
    /// nothing — the dead-counter CI gate treats them differently.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Value of the float counter `name` (zero when never registered).
    pub fn float_counter(&self, name: &str) -> f64 {
        self.float_counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Value of the gauge `name` (`None` when never registered).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram snapshot `name` (`None` when never registered).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Serialize the snapshot as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
        }
        out.push_str("\n  },\n  \"float_counters\": {");
        for (i, (name, v)) in self.float_counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), json_f64(*v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape(name), json_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"total\": {}, \"sum\": {}, \"mean\": {}, \"bounds\": [",
                escape(name),
                h.total,
                json_f64(h.sum),
                json_f64(h.mean())
            );
            for (j, b) in h.bounds.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{}", json_f64(*b));
            }
            out.push_str("], \"counts\": [");
            for (j, c) in h.counts.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{c}");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "\n  }},\n  \"dropped_events\": {},\n  \"events\": [",
            self.dropped_events
        );
        for (i, event) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\": {}, \"wall_us\": {}, \"sim_s\": {}, \"event\": \"{}\"",
                event.seq,
                event.wall_us,
                json_f64(event.sim_s),
                event.kind.name()
            );
            for (field, value) in event.kind.fields() {
                let _ = write!(out, ", \"{field}\": {}", field_json(value));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render a one-screen plain-text summary: every counter, float
    /// counter, and gauge with its value, every histogram with its count
    /// and mean, and the journal depth. Printed by `repro` after
    /// metrics-enabled runs.
    pub fn summary(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("METRICS SUMMARY\n");
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.float_counters.iter().map(|(n, _)| n.len()))
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0)
            .max("journal events".len());
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
        for (name, v) in &self.float_counters {
            let _ = writeln!(out, "  {name:<width$}  {v:.1}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v:.1}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  n={} mean={:.3e}s",
                h.total,
                h.mean()
            );
        }
        let _ = writeln!(
            out,
            "  {:<width$}  {} retained, {} dropped",
            "journal events",
            self.events.len(),
            self.dropped_events
        );
        out
    }

    /// Serialize the metrics (journal excluded — Prometheus carries series,
    /// not logs) in the Prometheus text exposition format. Metric names are
    /// prefixed `pmstack_` with dots mapped to underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, v) in &self.counters {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom}_total counter");
            let _ = writeln!(out, "{prom}_total {v}");
        }
        for (name, v) in &self.float_counters {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom}_total counter");
            let _ = writeln!(out, "{prom}_total {}", prom_f64(*v));
        }
        for (name, v) in &self.gauges {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} gauge");
            let _ = writeln!(out, "{prom} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{prom}_bucket{{le=\"{}\"}} {cumulative}",
                    prom_f64(*bound)
                );
            }
            let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", h.total);
            let _ = writeln!(out, "{prom}_sum {}", prom_f64(h.sum));
            let _ = writeln!(out, "{prom}_count {}", h.total);
        }
        out
    }
}

/// One snapshot serialization format behind a common interface — the
/// scaphandre-style exporter family. The daemon's `/metrics` endpoint, the
/// `repro --metrics-out` writer, and the stdout summary all speak through
/// this trait, so adding a format is one impl, not three call sites.
pub trait Exporter: Send + Sync {
    /// The format's registry name (`prometheus`, `json`, `summary`).
    fn name(&self) -> &'static str;
    /// The HTTP `Content-Type` the rendered document should be served as.
    fn content_type(&self) -> &'static str;
    /// Render the snapshot in this format.
    fn render(&self, snap: &Snapshot) -> String;
}

/// Prometheus text exposition format ([`Snapshot::to_prometheus`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct PrometheusExporter;

impl Exporter for PrometheusExporter {
    fn name(&self) -> &'static str {
        "prometheus"
    }

    fn content_type(&self) -> &'static str {
        "text/plain; version=0.0.4"
    }

    fn render(&self, snap: &Snapshot) -> String {
        snap.to_prometheus()
    }
}

/// Self-contained JSON document ([`Snapshot::to_json`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonExporter;

impl Exporter for JsonExporter {
    fn name(&self) -> &'static str {
        "json"
    }

    fn content_type(&self) -> &'static str {
        "application/json"
    }

    fn render(&self, snap: &Snapshot) -> String {
        snap.to_json()
    }
}

/// Human-readable one-screen summary ([`Snapshot::summary`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct SummaryExporter;

impl Exporter for SummaryExporter {
    fn name(&self) -> &'static str {
        "summary"
    }

    fn content_type(&self) -> &'static str {
        "text/plain; charset=utf-8"
    }

    fn render(&self, snap: &Snapshot) -> String {
        snap.summary()
    }
}

/// Every registered exporter name, usage order.
pub const EXPORTER_NAMES: &[&str] = &["prometheus", "json", "summary"];

/// Look an exporter up by name (`None` for unknown formats).
pub fn exporter(name: &str) -> Option<Box<dyn Exporter>> {
    match name {
        "prometheus" => Some(Box::new(PrometheusExporter)),
        "json" => Some(Box::new(JsonExporter)),
        "summary" => Some(Box::new(SummaryExporter)),
        _ => None,
    }
}

/// Check that `text` is well-formed Prometheus text exposition format:
/// every non-empty line is either a `# TYPE <name> <kind>` comment or a
/// `<name>[{labels}] <value>` sample whose metric name is legal, whose
/// value parses, and whose family was announced by a preceding `# TYPE`
/// line. Returns the first violation. Shared by the obs format tests and
/// the daemon's `/metrics` conformance suite — a torn or truncated scrape
/// fails here.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    let mut families: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg} in `{line}`", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("TYPE") {
                continue; // HELP or free comment: legal, unchecked.
            }
            let name = parts
                .next()
                .ok_or_else(|| at("TYPE comment without a metric name".into()))?;
            if !legal_name(name) {
                return Err(at(format!("illegal metric name `{name}`")));
            }
            match parts.next() {
                Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                other => return Err(at(format!("illegal metric kind {other:?}"))),
            }
            families.push(name.to_string());
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("sample line without a value".into()))?;
        let name = series.split('{').next().unwrap_or(series);
        if !legal_name(name) {
            return Err(at(format!("illegal metric name `{name}`")));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(at("unterminated label set".into()));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(at(format!("unparseable sample value `{value}`")));
        }
        // The family is the name minus a histogram/counter suffix.
        let announced = families.iter().any(|f| {
            name == f
                || ["_bucket", "_sum", "_count", "_total"]
                    .iter()
                    .any(|s| name.strip_suffix(s).is_some_and(|base| base == f))
        });
        if !announced {
            return Err(at(format!("sample `{name}` without a preceding # TYPE")));
        }
    }
    Ok(())
}

/// JSON-safe f64: finite values print shortest-roundtrip, non-finite
/// (`NaN` sim-times, `inf` bounds) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v:?}")
    }
}

fn field_json(value: FieldValue) -> String {
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::F64(v) => json_f64(v),
        FieldValue::Str(s) => format!("\"{}\"", escape(s)),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("pmstack_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;

    fn sample() -> Snapshot {
        let hist = {
            let h = crate::metrics::Histogram::new(&[0.1, 1.0]);
            h.observe(0.05);
            h.observe(0.5);
            h.observe(5.0);
            h.snapshot()
        };
        Snapshot {
            counters: vec![("exec.tasks.stolen".into(), 12)],
            float_counters: vec![("rm.watts.reclaimed".into(), 340.5)],
            gauges: vec![("exec.pool.workers".into(), 2.0)],
            histograms: vec![("grid.eval_cell.secs".into(), hist)],
            events: vec![Event {
                seq: 0,
                wall_us: 42,
                sim_s: f64::NAN,
                kind: EventKind::Marker {
                    name: "phase",
                    value: 1.0,
                },
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn json_export_is_well_formed() {
        let json = sample().to_json();
        assert!(json.contains("\"exec.tasks.stolen\": 12"));
        assert!(json.contains("\"rm.watts.reclaimed\": 340.5"));
        // NaN sim-time exported as null, not NaN (invalid JSON).
        assert!(json.contains("\"sim_s\": null"));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prometheus_export_has_cumulative_buckets() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("pmstack_exec_tasks_stolen_total 12"));
        assert!(prom.contains("pmstack_exec_pool_workers 2.0"));
        let lines: Vec<&str> = prom
            .lines()
            .filter(|l| l.starts_with("pmstack_grid_eval_cell_secs_bucket"))
            .collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with(" 1"));
        assert!(lines[1].ends_with(" 2"));
        assert!(lines[2] == "pmstack_grid_eval_cell_secs_bucket{le=\"+Inf\"} 3");
        assert!(prom.contains("pmstack_grid_eval_cell_secs_count 3"));
    }

    #[test]
    fn summary_lists_every_metric_kind() {
        let text = sample().summary();
        assert!(text.contains("exec.tasks.stolen"));
        assert!(text.contains("rm.watts.reclaimed"));
        assert!(text.contains("exec.pool.workers"));
        assert!(text.contains("grid.eval_cell.secs"));
        assert!(text.contains("n=3"));
        assert!(text.contains("1 retained, 0 dropped"));
    }

    #[test]
    fn snapshot_accessors_default_for_missing() {
        let s = sample();
        // Absent and zero are distinguishable: the dead-counter gate needs
        // to tell "never instrumented" from "instrumented but idle".
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.counter("exec.tasks.stolen"), Some(12));
        assert_eq!(s.float_counter("nope"), 0.0);
        assert!(s.histogram("nope").is_none());
        assert_eq!(s.gauge("exec.pool.workers"), Some(2.0));
    }

    #[test]
    fn exporter_family_unifies_the_three_formats() {
        let s = sample();
        for name in EXPORTER_NAMES {
            let e = exporter(name).expect("registered exporter");
            assert_eq!(e.name(), *name);
            assert!(!e.content_type().is_empty());
            assert!(!e.render(&s).is_empty());
        }
        assert!(exporter("xml").is_none());
        assert_eq!(
            exporter("prometheus").unwrap().render(&s),
            s.to_prometheus()
        );
        assert_eq!(exporter("json").unwrap().render(&s), s.to_json());
        assert_eq!(exporter("summary").unwrap().render(&s), s.summary());
        assert!(exporter("json").unwrap().content_type().contains("json"));
    }

    #[test]
    fn prometheus_export_validates() {
        validate_prometheus(&sample().to_prometheus()).expect("well-formed export");
        // An empty export is trivially well-formed.
        validate_prometheus("").unwrap();
    }

    #[test]
    fn validator_rejects_torn_output() {
        // Sample without an announcing TYPE line.
        assert!(validate_prometheus("pmstack_x_total 3\n").is_err());
        // Truncated mid-line: the value is missing.
        assert!(validate_prometheus("# TYPE pmstack_x_total counter\npmstack_x_total\n").is_err());
        // Garbage value.
        assert!(validate_prometheus("# TYPE pmstack_x gauge\npmstack_x 1.2.3\n").is_err());
        // Unterminated label set (a torn bucket line).
        assert!(
            validate_prometheus("# TYPE pmstack_h histogram\npmstack_h_bucket{le=\"0.1 7\n")
                .is_err()
        );
        // Illegal metric name.
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        // Histogram family announces its _bucket/_sum/_count samples.
        validate_prometheus(
            "# TYPE pmstack_h histogram\npmstack_h_bucket{le=\"+Inf\"} 2\n\
             pmstack_h_sum 0.5\npmstack_h_count 2\n",
        )
        .unwrap();
    }
}
