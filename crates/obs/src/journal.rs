//! The append-only structured event journal: typed events stamped with
//! simulation time and wall time, held in a bounded ring buffer.
//!
//! Events are for the *rare, meaningful* state changes of the stack — a
//! fault firing, a RAPL request clamped, a job backfilled — not per-
//! iteration traffic (that is what counters and histograms are for). The
//! ring keeps the most recent [`Journal::CAPACITY`] events and counts what
//! it sheds, so a snapshot always says whether its view is complete.

use crate::recorder;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One journal entry: a typed [`EventKind`] plus its timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (never reused, even across ring wrap).
    pub seq: u64,
    /// Microseconds since the recorder's wall-clock epoch.
    pub wall_us: u64,
    /// The caller's simulation clock in seconds (`NaN` when no simulated
    /// time is meaningful; exported as `null`).
    pub sim_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// A scalar field of an event, as exposed by [`EventKind::fields`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer field (host indices, job ids, node counts).
    U64(u64),
    /// A floating-point field (watts, seconds).
    F64(f64),
    /// A static-string field (fault kinds, marker names).
    Str(&'static str),
}

/// The event taxonomy: every structured thing the stack journals.
///
/// Layers own their variants — simhw fires [`Self::FaultInjected`] and
/// [`Self::RaplClamp`], the runtime [`Self::FfwdCaptured`], the resource
/// manager the job/node lifecycle events. [`Self::Marker`] is the escape
/// hatch for ad-hoc annotations (e.g. phase boundaries in experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A fault from the fault plan fired against a live host.
    FaultInjected {
        /// Global host index the fault hit.
        host: u64,
        /// Fault kind name (e.g. `"node_death"`, `"stuck_rapl"`).
        fault: &'static str,
    },
    /// A power-limit request was clamped by per-socket RAPL bounds or a
    /// stuck-RAPL latch: what lands differs from what was asked.
    RaplClamp {
        /// Node index whose limit was clamped.
        node: u64,
        /// Requested node power limit in watts.
        requested_w: f64,
        /// Limit actually applied after clamping, in watts.
        applied_w: f64,
    },
    /// The platform captured a steady-state snapshot for fast-forward
    /// replay.
    FfwdCaptured {
        /// Number of hosts covered by the captured steady state.
        hosts: u64,
    },
    /// The resource manager started a job.
    JobStarted {
        /// Job id.
        job: u64,
        /// Nodes allocated to the job.
        nodes: u64,
        /// Power reserved for the job, in watts.
        power_w: f64,
    },
    /// A job ran to completion and released its resources.
    JobCompleted {
        /// Job id.
        job: u64,
    },
    /// A job was started out of queue order by the backfill scheduler.
    JobBackfilled {
        /// Job id.
        job: u64,
    },
    /// A dead node was drained from the pool and its watts reclaimed.
    NodeDrained {
        /// Node index drained.
        node: u64,
        /// Watts returned to the ledger.
        reclaimed_w: f64,
    },
    /// A running job lost a node but continues degraded.
    JobDegraded {
        /// Job id.
        job: u64,
        /// The node the job lost.
        lost_node: u64,
        /// Nodes the job still holds.
        remaining: u64,
    },
    /// A running job was killed (node death under it) and returned to the
    /// pending pool for a retried launch.
    JobRequeued {
        /// Job id.
        job: u64,
        /// Surviving nodes released back to the pool.
        released: u64,
        /// Watts released back to the ledger.
        power_w: f64,
    },
    /// A running job was checkpointed and evicted by a budget shock.
    JobPreempted {
        /// Job id.
        job: u64,
        /// Watts released back to the ledger.
        power_w: f64,
    },
    /// A node's heartbeat lease outlived its timeout and the node was
    /// declared dead.
    LeaseExpired {
        /// Node index whose lease expired.
        node: u64,
    },
    /// A job finished writing a checkpoint; a later restart resumes here.
    CheckpointSaved {
        /// Job id.
        job: u64,
        /// Checkpointed progress, node-independent work hours.
        progress_h: f64,
    },
    /// The facility power budget moved abruptly (grid-price shock).
    BudgetShock {
        /// The new system budget, watts.
        budget_w: f64,
    },
    /// Ad-hoc annotation with one numeric value.
    Marker {
        /// Marker name.
        name: &'static str,
        /// Associated value.
        value: f64,
    },
}

impl EventKind {
    /// Stable dotted event name, used as the `"event"` key in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FaultInjected { .. } => "fault.injected",
            EventKind::RaplClamp { .. } => "rapl.clamp",
            EventKind::FfwdCaptured { .. } => "ffwd.captured",
            EventKind::JobStarted { .. } => "job.started",
            EventKind::JobCompleted { .. } => "job.completed",
            EventKind::JobBackfilled { .. } => "job.backfilled",
            EventKind::NodeDrained { .. } => "node.drained",
            EventKind::JobDegraded { .. } => "job.degraded",
            EventKind::JobRequeued { .. } => "job.requeued",
            EventKind::JobPreempted { .. } => "job.preempted",
            EventKind::LeaseExpired { .. } => "lease.expired",
            EventKind::CheckpointSaved { .. } => "checkpoint.saved",
            EventKind::BudgetShock { .. } => "budget.shock",
            EventKind::Marker { .. } => "marker",
        }
    }

    /// The event's payload as (field name, value) pairs, in declaration
    /// order — the single source the exporters serialize from.
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        match *self {
            EventKind::FaultInjected { host, fault } => vec![
                ("host", FieldValue::U64(host)),
                ("fault", FieldValue::Str(fault)),
            ],
            EventKind::RaplClamp {
                node,
                requested_w,
                applied_w,
            } => vec![
                ("node", FieldValue::U64(node)),
                ("requested_w", FieldValue::F64(requested_w)),
                ("applied_w", FieldValue::F64(applied_w)),
            ],
            EventKind::FfwdCaptured { hosts } => vec![("hosts", FieldValue::U64(hosts))],
            EventKind::JobStarted {
                job,
                nodes,
                power_w,
            } => vec![
                ("job", FieldValue::U64(job)),
                ("nodes", FieldValue::U64(nodes)),
                ("power_w", FieldValue::F64(power_w)),
            ],
            EventKind::JobCompleted { job } => vec![("job", FieldValue::U64(job))],
            EventKind::JobBackfilled { job } => vec![("job", FieldValue::U64(job))],
            EventKind::NodeDrained { node, reclaimed_w } => vec![
                ("node", FieldValue::U64(node)),
                ("reclaimed_w", FieldValue::F64(reclaimed_w)),
            ],
            EventKind::JobDegraded {
                job,
                lost_node,
                remaining,
            } => vec![
                ("job", FieldValue::U64(job)),
                ("lost_node", FieldValue::U64(lost_node)),
                ("remaining", FieldValue::U64(remaining)),
            ],
            EventKind::JobRequeued {
                job,
                released,
                power_w,
            } => vec![
                ("job", FieldValue::U64(job)),
                ("released", FieldValue::U64(released)),
                ("power_w", FieldValue::F64(power_w)),
            ],
            EventKind::JobPreempted { job, power_w } => vec![
                ("job", FieldValue::U64(job)),
                ("power_w", FieldValue::F64(power_w)),
            ],
            EventKind::LeaseExpired { node } => vec![("node", FieldValue::U64(node))],
            EventKind::CheckpointSaved { job, progress_h } => vec![
                ("job", FieldValue::U64(job)),
                ("progress_h", FieldValue::F64(progress_h)),
            ],
            EventKind::BudgetShock { budget_w } => vec![("budget_w", FieldValue::F64(budget_w))],
            EventKind::Marker { name, value } => vec![
                ("name", FieldValue::Str(name)),
                ("value", FieldValue::F64(value)),
            ],
        }
    }
}

/// Bounded ring buffer of [`Event`]s with a monotonic sequence counter and
/// a shed-count for overflow accounting.
#[derive(Debug)]
pub(crate) struct Journal {
    ring: Mutex<VecDeque<Event>>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl Journal {
    /// Ring capacity: comfortably holds a full `repro` run's worth of job
    /// lifecycle + fault + clamp events while bounding memory.
    pub(crate) const CAPACITY: usize = 4096;

    pub(crate) fn new() -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(64)),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one event, stamping wall time from the recorder epoch and
    /// shedding the oldest entry when full.
    pub(crate) fn push(&self, sim_s: f64, kind: EventKind) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            wall_us: recorder().wall_us(),
            sim_s,
            kind,
        };
        let mut ring = self.ring.lock().expect("journal poisoned");
        if ring.len() >= Self::CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    pub(crate) fn clear(&self) {
        self.ring.lock().expect("journal poisoned").clear();
        self.dropped.store(0, Ordering::Relaxed);
        // seq keeps counting: sequence numbers are never reused.
    }

    /// Copy out the retained events (oldest first) and the shed count.
    pub(crate) fn drain_copy(&self) -> (Vec<Event>, u64) {
        let ring = self.ring.lock().expect("journal poisoned");
        (
            ring.iter().cloned().collect(),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sheds_oldest_and_counts_drops() {
        let j = Journal::new();
        for i in 0..(Journal::CAPACITY as u64 + 10) {
            j.push(
                i as f64,
                EventKind::Marker {
                    name: "tick",
                    value: i as f64,
                },
            );
        }
        let (events, dropped) = j.drain_copy();
        assert_eq!(events.len(), Journal::CAPACITY);
        assert_eq!(dropped, 10);
        // Oldest surviving event is the 11th pushed; seq is monotonic.
        assert_eq!(events.first().unwrap().seq, 10);
        assert_eq!(events.last().unwrap().seq, Journal::CAPACITY as u64 + 9);
    }

    #[test]
    fn event_names_and_fields_align() {
        let kind = EventKind::RaplClamp {
            node: 7,
            requested_w: 150.0,
            applied_w: 120.0,
        };
        assert_eq!(kind.name(), "rapl.clamp");
        let fields = kind.fields();
        assert_eq!(fields[0], ("node", FieldValue::U64(7)));
        assert_eq!(fields[2], ("applied_w", FieldValue::F64(120.0)));
    }
}
