//! # pmstack-obs — stack-wide observability
//!
//! The paper's whole argument is *visibility*: `MixedAdaptive` wins because
//! it can see both system power and application behaviour, and the
//! PowerStack community frames the production version of that as
//! multi-layer telemetry flowing between the resource manager, the job
//! runtimes, and the hardware. This crate is that layer for the
//! reproduction: every crate of the stack records what it does here, and
//! the `repro` CLI exports the result as JSON or Prometheus text.
//!
//! Three instrument families, all behind one global [`Recorder`]:
//!
//! * **Metrics** — monotonic [`Counter`]s, monotonic [`FloatCounter`]s (for
//!   watt totals), last-write [`Gauge`]s, and fixed-bucket [`Histogram`]s
//!   whose snapshots merge associatively (the property tests in
//!   `tests/prop.rs` prove it).
//! * **Scoped span timers** — `obs::span!("grid.eval_cell")` returns an
//!   RAII guard that feeds the wall-clock duration of its scope into a
//!   duration histogram of the same name.
//! * **Event journal** — an append-only, ring-buffer-bounded log of typed
//!   [`EventKind`]s stamped with simulation time and wall time.
//!
//! # Cost discipline
//!
//! The recorder starts *disabled*. Every instrument checks
//! [`enabled`] — one relaxed atomic load and a branch — before doing
//! anything, so the hot loops (`NodeBank::step_all`,
//! `JobPlatform::run_iteration_into`) pay nanoseconds when nobody is
//! watching (guarded by the `obs_overhead` bench against
//! `BENCH_step.json`). When enabled, static call sites cache their metric
//! handle in a `OnceLock`, so a counter bump is an atomic load plus a
//! relaxed `fetch_add`. [`Recorder::reset`] therefore *zeroes* metrics
//! instead of dropping them: cached handles stay registered forever.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod export;
mod journal;
mod metrics;

pub use export::{
    exporter, validate_prometheus, Exporter, JsonExporter, PrometheusExporter, Snapshot,
    SummaryExporter, EXPORTER_NAMES,
};
pub use journal::{Event, EventKind, FieldValue};
pub use metrics::{Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot};

use journal::Journal;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Bucket bounds (seconds) shared by every span-duration histogram:
/// powers of four from 100 ns to ~27 s, capturing everything from one
/// columnar `step_all` call to a full grid run.
pub const DURATION_BOUNDS: &[f64] = &[
    1e-7,
    4e-7,
    1.6e-6,
    6.4e-6,
    2.56e-5,
    1.024e-4,
    4.096e-4,
    1.6384e-3,
    6.5536e-3,
    2.62144e-2,
    0.104_857_6,
    0.419_430_4,
    1.677_721_6,
    6.710_886_4,
    26.843_545_6,
];

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while the global recorder is capturing. Inline-able single relaxed
/// load — the entire disabled-path cost of every instrument in this crate.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the global recorder on. Instruments hit after this call record.
pub fn enable() {
    recorder(); // pin the wall-clock epoch before anything records
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the global recorder off. Instruments become no-ops again; recorded
/// data stays readable through [`snapshot`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Zero every metric and clear the journal (registrations survive, so
/// cached handles at static call sites stay valid). Test isolation helper.
pub fn reset() {
    recorder().reset();
}

/// Capture a consistent point-in-time view of every metric and the journal.
pub fn snapshot() -> Snapshot {
    recorder().snapshot()
}

/// Append a typed event to the journal (no-op while disabled). `sim_s` is
/// the caller's simulation clock; pass `f64::NAN` where no simulated time
/// is meaningful (exported as `null`).
#[inline]
pub fn event(sim_s: f64, kind: EventKind) {
    if enabled() {
        recorder().journal.push(sim_s, kind);
    }
}

/// The global recorder: the metric registry plus the event journal.
///
/// All instruments route through the process-wide instance returned by
/// [`recorder`]; it exists so the whole observability layer is one branch
/// when disabled and one shared sink when enabled.
pub struct Recorder {
    epoch: Instant,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    float_counters: Mutex<HashMap<String, Arc<FloatCounter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    journal: Journal,
}

/// The process-wide [`Recorder`].
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        counters: Mutex::new(HashMap::new()),
        float_counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(HashMap::new()),
        histograms: Mutex::new(HashMap::new()),
        journal: Journal::new(),
    })
}

impl Recorder {
    /// Microseconds since the recorder was first touched (journal wall
    /// stamps are relative to this epoch).
    pub(crate) fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The counter registered under `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The float counter registered under `name`.
    pub fn float_counter(&self, name: &str) -> Arc<FloatCounter> {
        let mut map = self
            .float_counters
            .lock()
            .expect("float counter registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(FloatCounter::new()))
            .clone()
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram registered under `name`. The first registration fixes
    /// the bucket bounds; later callers share them regardless of the bounds
    /// they pass (one metric, one shape — snapshots must merge).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    fn reset(&self) {
        for c in self.counters.lock().expect("poisoned").values() {
            c.reset();
        }
        for c in self.float_counters.lock().expect("poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("poisoned").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("poisoned").values() {
            h.reset();
        }
        self.journal.clear();
    }

    fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut float_counters: Vec<(String, f64)> = self
            .float_counters
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        float_counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = self
            .gauges
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .expect("poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let (events, dropped_events) = self.journal.drain_copy();
        Snapshot {
            counters,
            float_counters,
            gauges,
            histograms,
            events,
            dropped_events,
        }
    }
}

/// A named counter handle for static call sites: resolves its registry
/// entry once, then each [`Self::add`] is an enabled-check plus a relaxed
/// `fetch_add`.
pub struct StaticCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl StaticCounter {
    /// A handle for the counter registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| recorder().counter(self.name))
                .add(n);
        }
    }

    /// Add one (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A named float-counter handle for static call sites (monotonic f64 sums:
/// watt totals, joules, seconds of work).
pub struct StaticFloatCounter {
    name: &'static str,
    cell: OnceLock<Arc<FloatCounter>>,
}

impl StaticFloatCounter {
    /// A handle for the float counter registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `v` (no-op while disabled; negative values are rejected to keep
    /// the counter monotonic).
    #[inline]
    pub fn add(&self, v: f64) {
        if enabled() && v > 0.0 {
            self.cell
                .get_or_init(|| recorder().float_counter(self.name))
                .add(v);
        }
    }
}

/// A named gauge handle for static call sites.
pub struct StaticGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl StaticGauge {
    /// A handle for the gauge registered under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Set the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.cell.get_or_init(|| recorder().gauge(self.name)).set(v);
        }
    }
}

/// A named histogram handle for static call sites; also the anchor the
/// [`span!`] macro hangs its RAII guards on.
pub struct StaticHistogram {
    name: &'static str,
    bounds: &'static [f64],
    cell: OnceLock<Arc<Histogram>>,
}

impl StaticHistogram {
    /// A handle for the histogram registered under `name` with `bounds`.
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> Self {
        Self {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// Record one observation (no-op while disabled).
    #[inline]
    pub fn observe(&self, v: f64) {
        if enabled() {
            self.cell
                .get_or_init(|| recorder().histogram(self.name, self.bounds))
                .observe(v);
        }
    }

    /// Start a scoped span: the guard's drop records the elapsed seconds
    /// into this histogram. While disabled the guard is inert and no clock
    /// is read.
    #[inline]
    pub fn start_span(&self) -> SpanGuard<'_> {
        SpanGuard {
            live: enabled().then(|| (self, Instant::now())),
        }
    }
}

/// RAII guard of one timed scope; see [`StaticHistogram::start_span`] and
/// [`span!`].
pub struct SpanGuard<'a> {
    live: Option<(&'a StaticHistogram, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.live.take() {
            hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Open a scoped span timer feeding the duration histogram named by the
/// literal: `let _span = obs::span!("grid.eval_cell");`. The span closes
/// (and records) when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static SPAN_HIST: $crate::StaticHistogram =
            $crate::StaticHistogram::new($name, $crate::DURATION_BOUNDS);
        SPAN_HIST.start_span()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide; tests in this module serialize
    // behind one lock so enable/disable/reset do not race each other.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = guard();
        disable();
        reset();
        static C: StaticCounter = StaticCounter::new("test.disabled.counter");
        static F: StaticFloatCounter = StaticFloatCounter::new("test.disabled.float");
        static G: StaticGauge = StaticGauge::new("test.disabled.gauge");
        static H: StaticHistogram = StaticHistogram::new("test.disabled.hist", DURATION_BOUNDS);
        C.inc();
        F.add(2.5);
        G.set(7.0);
        H.observe(0.1);
        {
            let _span = span!("test.disabled.span");
        }
        event(
            1.0,
            EventKind::Marker {
                name: "x",
                value: 1.0,
            },
        );
        let snap = snapshot();
        assert_eq!(snap.counter("test.disabled.counter").unwrap_or(0), 0);
        assert_eq!(snap.float_counter("test.disabled.float"), 0.0);
        assert!(snap
            .histogram("test.disabled.hist")
            .is_none_or(|h| h.total == 0));
        assert!(snap
            .histogram("test.disabled.span")
            .is_none_or(|h| h.total == 0));
        assert!(snap.events.is_empty());
    }

    #[test]
    fn enabled_recorder_counts_and_times() {
        let _g = guard();
        enable();
        reset();
        static C: StaticCounter = StaticCounter::new("test.enabled.counter");
        C.add(3);
        C.inc();
        {
            let _span = span!("test.enabled.span");
            std::hint::black_box(0u64);
        }
        event(
            0.5,
            EventKind::FaultInjected {
                host: 3,
                fault: "node_death",
            },
        );
        let snap = snapshot();
        disable();
        assert_eq!(snap.counter("test.enabled.counter"), Some(4));
        let h = snap.histogram("test.enabled.span").expect("span recorded");
        assert_eq!(h.total, 1);
        assert!(h.sum >= 0.0);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind.name(), "fault.injected");
        reset();
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let _g = guard();
        enable();
        reset();
        static C: StaticCounter = StaticCounter::new("test.reset.counter");
        C.inc();
        assert_eq!(snapshot().counter("test.reset.counter"), Some(1));
        reset();
        // Reset zeroes the counter but keeps it registered: Some(0), the
        // state the Option-returning accessor exists to distinguish.
        assert_eq!(snapshot().counter("test.reset.counter"), Some(0));
        // The cached handle still reaches the registered metric.
        C.inc();
        assert_eq!(snapshot().counter("test.reset.counter"), Some(1));
        disable();
        reset();
    }

    #[test]
    fn gauges_hold_last_write() {
        let _g = guard();
        enable();
        reset();
        static G: StaticGauge = StaticGauge::new("test.gauge.workers");
        G.set(4.0);
        G.set(9.0);
        let v = snapshot()
            .gauges
            .iter()
            .find(|(k, _)| k == "test.gauge.workers")
            .map(|(_, v)| *v);
        disable();
        assert_eq!(v, Some(9.0));
        reset();
    }
}
