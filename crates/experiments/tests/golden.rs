//! Golden-file regression for the full-scale evaluation grid.
//!
//! Re-runs the paper-scale grid (2000-node screen, seed 6, 100 nodes/job,
//! 100 iterations — exactly what `repro grid` runs) and diffs per-cell
//! time, energy, and EDP against `results/golden_grid.json` at the same
//! precision the CSV export prints. Any change to the physics, the
//! policies, the placement, or the seeding shows up here as a cell-level
//! diff; intentional changes re-bless with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p pmstack-experiments --test golden
//! ```

use pmstack_experiments::grid::{EvaluationGrid, GridParams};
use pmstack_experiments::Testbed;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/golden_grid.json"
);

/// Render the grid cells as the golden JSON document. Values are stored
/// as strings at the CSV export's printed precision so the comparison is
/// exact and the tolerated precision is explicit in the file itself.
fn render(grid: &EvaluationGrid) -> String {
    let mut out = String::from(
        "{\n  \"testbed\": {\"screen_nodes\": 2000, \"seed\": 6},\n  \
         \"params\": {\"nodes_per_job\": 100, \"iterations\": 100},\n  \"cells\": [\n",
    );
    let n = grid.cells.len();
    for (i, c) in grid.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"mix\": \"{}\", \"budget\": \"{}\", \"policy\": \"{}\", \
             \"mean_elapsed_s\": \"{:.4}\", \"energy_j\": \"{:.1}\", \"edp\": \"{:.4e}\"}}{}",
            c.mix,
            c.level,
            c.policy,
            c.mean_elapsed.value(),
            c.energy.value(),
            c.edp,
            if i + 1 == n { "" } else { "," },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn full_scale_grid_matches_golden_file() {
    let tb = Testbed::new(2000, 6);
    let grid = EvaluationGrid::run(&tb, GridParams::default());
    assert_eq!(grid.cells.len(), 90, "6 mixes x 3 budgets x 5 policies");
    let actual = render(&grid);

    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/golden_grid.json missing; bless with GOLDEN_BLESS=1");
    if expected != actual {
        for (line, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(
                e,
                a,
                "golden grid diverged at results/golden_grid.json:{}",
                line + 1
            );
        }
        panic!(
            "golden grid line count changed: expected {}, got {}",
            expected.lines().count(),
            actual.lines().count()
        );
    }
}
