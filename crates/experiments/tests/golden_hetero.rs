//! Golden-file regression for the heterogeneous-fleet scenario.
//!
//! Re-runs `repro hetero` at its default scale (6 hosts/job, 60 ticks,
//! budget 72% of summed TDP — exactly what the CLI runs) and diffs every
//! policy row on both fleets against `results/golden_hetero.json` at
//! fixed printed precision. Any change to the class descriptors, the
//! domain split, the balancer, the per-class characterization, or the
//! policies shows up here as a row-level diff; intentional changes
//! re-bless with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p pmstack-experiments --test golden_hetero
//! ```

use pmstack_experiments::hetero::{run_hetero, HeteroParams, HeteroReport};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/golden_hetero.json"
);

/// Render the report as the golden JSON document. Values are stored as
/// strings at fixed precision so the comparison is exact and the
/// tolerated precision is explicit in the file itself. Every number here
/// folds in fleet/job order — nothing is derived from hash-map iteration.
fn render(report: &HeteroReport) -> String {
    let mut out = String::from(
        "{\n  \"params\": {\"hosts_per_job\": 6, \"ticks\": 60, \"budget_frac\": \"0.72\"},\n  \
         \"fleets\": [\n",
    );
    let nf = report.fleets.len();
    for (fi, f) in report.fleets.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fleet\": \"{}\", \"classes\": \"{}\", \"hosts\": {}, \
             \"budget_w\": \"{:.1}\", \"rows\": [",
            f.fleet,
            f.classes.join("+"),
            f.hosts,
            f.budget.value(),
        );
        let nr = f.rows.len();
        for (ri, r) in f.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "      {{\"policy\": \"{}\", \"mean_elapsed_s\": \"{:.4}\", \
                 \"energy_j\": \"{:.1}\", \"pct_of_budget\": \"{:.2}\", \
                 \"domain_shifts\": {}}}{}",
                r.policy,
                r.mean_elapsed,
                r.energy_j,
                r.pct_of_budget,
                r.domain_shifts,
                if ri + 1 == nr { "" } else { "," },
            );
        }
        let _ = writeln!(out, "    ]}}{}", if fi + 1 == nf { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn hetero_scenario_matches_golden_file() {
    let report = run_hetero(&HeteroParams::default_scale());
    assert_eq!(report.fleets.len(), 2, "homogeneous + 3-class");
    assert_eq!(report.fleets[1].rows.len(), 5, "one row per policy");
    let actual = render(&report);

    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("results/golden_hetero.json missing; bless with GOLDEN_BLESS=1");
    if expected != actual {
        for (line, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(
                e,
                a,
                "golden hetero diverged at results/golden_hetero.json:{}",
                line + 1
            );
        }
        panic!(
            "golden hetero line count changed: expected {}, got {}",
            expected.lines().count(),
            actual.lines().count()
        );
    }
}
