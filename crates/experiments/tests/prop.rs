//! Property-based tests of the evaluation layer: the paper's structural
//! guarantees must hold for any seed, any scale, and any budget.

use pmstack_core::{JobChar, PolicyKind};
use pmstack_experiments::budgets::MixBudgets;
use pmstack_experiments::grid::{run_mix, GridParams};
use pmstack_experiments::mixes::{self, MixKind};
use pmstack_experiments::Testbed;
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = MixKind> {
    prop_oneof![
        Just(MixKind::NeedUsedPower),
        Just(MixKind::HighImbalance),
        Just(MixKind::WastefulPower),
        Just(MixKind::LowPower),
        Just(MixKind::HighPower),
        Just(MixKind::RandomLarge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Table III's ordering (min ≤ ideal ≤ max ≤ mix TDP) holds for every
    /// mix under any variation seed and job size.
    #[test]
    fn budget_ordering_is_seed_invariant(
        kind in arb_mix(),
        seed in 0u64..500,
        nodes_per_job in 2usize..8,
    ) {
        let tb = Testbed::new(nodes_per_job * 9 * 2 + 50, seed);
        let mix = mixes::build_scaled(kind, nodes_per_job);
        let setups = tb.place(&mix);
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, tb.model(), &s.host_eps))
            .collect();
        let b = MixBudgets::from_characterization(&chars);
        prop_assert!(b.min <= b.ideal);
        prop_assert!(b.ideal <= b.max);
        let tdp = tb.model().spec().tdp_per_node() * mix.total_nodes() as f64;
        prop_assert!(b.max <= tdp + pmstack_simhw::Watts(1e-6));
    }

    /// For any seed and mix, the grid's structural invariants hold: budget-
    /// respecting policies stay at or under 100% utilization and
    /// MixedAdaptive never meaningfully loses time to StaticCaps.
    #[test]
    fn grid_invariants_hold_for_any_seed(kind in arb_mix(), seed in 0u64..200) {
        let tb = Testbed::new(160, seed);
        let params = GridParams {
            nodes_per_job: 3,
            iterations: 10,
            jitter_sigma: 0.005,
        };
        let cells = run_mix(&tb, kind, params);
        prop_assert_eq!(cells.len(), 15);
        for c in &cells {
            prop_assert!(c.mean_elapsed.value() > 0.0);
            prop_assert!(c.energy.value() > 0.0);
            if c.policy != PolicyKind::Precharacterized {
                prop_assert!(
                    c.pct_of_budget <= 100.5,
                    "{} {} {}: {:.1}%",
                    c.mix, c.level, c.policy, c.pct_of_budget
                );
            }
            if c.policy == PolicyKind::MixedAdaptive {
                let s = c.savings.expect("savings present");
                prop_assert!(
                    s.time_pct > -2.0,
                    "{} {}: {:.2}% loss",
                    c.mix, c.level, s.time_pct
                );
            }
        }
    }

    /// The node screen always yields three ordered clusters whose members
    /// partition the population, for any seed.
    #[test]
    fn screen_partition_is_valid_for_any_seed(seed in 0u64..500, n in 120usize..400) {
        let tb = Testbed::new(n, seed);
        prop_assert_eq!(tb.clusters.sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(tb.screen_freqs_ghz.len(), n);
        let c = &tb.clusters.centroids;
        prop_assert!(c[0] <= c[1] && c[1] <= c[2]);
        // Frequencies land on the physical range.
        for &f in &tb.screen_freqs_ghz {
            prop_assert!((1.2..=2.6).contains(&f), "frequency {f} out of range");
        }
        // The selected cluster is the largest.
        let max = tb.clusters.sizes.iter().copied().max().unwrap();
        prop_assert_eq!(tb.capacity(), max);
    }

    /// Facility simulation invariants for any seed: utilization bounded,
    /// power within the idle-to-TDP envelope, determinism per seed.
    #[test]
    fn facility_invariants_for_any_seed(seed in 0u64..200) {
        use pmstack_experiments::facility::{simulate, FacilityParams};
        let params = FacilityParams {
            nodes: 256,
            days: 14,
            seed,
            arrivals_per_hour: 0.4,
            ..FacilityParams::default()
        };
        let a = simulate(&params);
        let b = simulate(&params);
        prop_assert_eq!(&a, &b, "determinism per seed");
        for (&mw, &u) in a.daily_mw.iter().zip(&a.daily_utilization) {
            prop_assert!((0.0..=1.0).contains(&u));
            let floor = 256.0 * (80.0 + 140.0) / 1e6;
            let ceil = 256.0 * (240.0 + 140.0) / 1e6;
            prop_assert!(mw >= floor - 1e-9 && mw <= ceil + 1e-9);
        }
    }
}
