//! Integration tests for the `repro` binary's command line: unknown flags
//! must exit nonzero with a usage hint (they used to be silently ignored),
//! and `--metrics-out` must emit both export formats.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_flag_exits_nonzero_with_usage() {
    let out = repro().arg("--bogus").output().expect("spawn repro");
    assert!(!out.status.success(), "--bogus must not exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--bogus`"), "{stderr}");
    assert!(stderr.contains("usage: repro"), "{stderr}");
}

#[test]
fn typoed_value_flag_exits_nonzero() {
    // The historical bug: `--replicate 20` parsed as (ignored flag,
    // artifact "20") and happily ran the wrong thing with exit 0.
    let out = repro()
        .args(["sweep", "--replicate", "20"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--replicate`"), "{stderr}");
}

#[test]
fn unknown_artifact_exits_nonzero() {
    let out = repro().arg("fig9").output().expect("spawn repro");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact `fig9`"), "{stderr}");
}

#[test]
fn megafleet_rejects_out_of_range_hosts_with_exit_2() {
    for bad in ["0", "1048577", "-3", "lots"] {
        let out = repro()
            .args(["megafleet", "--hosts", bad])
            .output()
            .expect("spawn repro");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--hosts {bad} must exit 2, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--hosts"), "{stderr}");
        assert!(stderr.contains("usage: repro"), "{stderr}");
    }
}

#[test]
fn megafleet_smoke_reports_shard_counters() {
    // A tiny fleet end to end: the artifact renders, and the shard
    // counters land in the metrics snapshot for ci/check_metrics.py.
    let dir = std::env::temp_dir().join(format!("repro-mega-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("mega.json");
    // 4096 hosts = four default segments, so the churn phase has other
    // segments to keep on the replay path and both counters go live.
    let out = repro()
        .args(["megafleet", "--fast", "--hosts", "4096", "--metrics-out"])
        .arg(&json_path)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MEGAFLEET: 4096 HOSTS"), "{stdout}");
    assert!(stdout.contains("shard_churn"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).expect("metrics JSON written");
    assert!(json.contains("simhw.bank.shard.invalidated"), "{json}");
    assert!(json.contains("simhw.bank.shard.replayed"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_writes_json_and_prometheus() {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("m.json");
    // table1 is the cheapest artifact: static text, no testbed.
    let out = repro()
        .args(["table1", "--metrics-out"])
        .arg(&json_path)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).expect("metrics JSON written");
    assert!(json.contains("\"counters\""), "{json}");
    let prom = std::fs::read_to_string(dir.join("m.json.prom")).expect("metrics .prom written");
    // table1 registers nothing, but the exporter must still run clean.
    assert!(prom.is_empty() || prom.contains("pmstack_"), "{prom}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fast_sweep_prints_metrics_summary_with_live_counters() {
    let out = repro()
        .args(["sweep", "--fast", "--replicates", "2"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("METRICS SUMMARY"), "{stdout}");
    assert!(stdout.contains("runtime.ffwd.engaged"), "{stdout}");
    assert!(stdout.contains("exec.tasks.executed"), "{stdout}");
}
