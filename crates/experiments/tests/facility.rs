//! Cross-crate determinism contract for the facility campaign.
//!
//! The campaign pre-draws every random quantity before the clock starts
//! and orders same-minute events by insertion sequence, so two runs with
//! the same seed must be *bit-identical* — not merely statistically
//! similar. This test pins that contract at the public-API boundary
//! (`run_campaign` + `render`), where a regression in any layer below
//! (event ordering, fault plans, ledger arithmetic, journal text) would
//! surface as a diff.

use pmstack_experiments::campaign::{render, run_campaign, CampaignParams};

/// Small enough to run in debug CI, large enough that chaos actually
/// kills jobs (lease expiries + requeues are nonzero at this scale).
fn small() -> CampaignParams {
    CampaignParams {
        nodes: 48,
        days: 1,
        seed: 11,
        chaos: 2,
        arrivals_per_hour: 0.5,
        ..CampaignParams::fast(2)
    }
}

#[test]
fn same_seed_reproduces_journals_and_summaries_bit_for_bit() {
    let a = run_campaign(&small());
    let b = run_campaign(&small());
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        // Journals first: on a mismatch the journal diff names the first
        // divergent event, which the summary comparison cannot.
        assert_eq!(ra.journal, rb.journal, "{} journals diverge", ra.kind);
        assert_eq!(ra, rb, "{} summaries diverge", ra.kind);
    }
    assert_eq!(render(&a), render(&b));
}

#[test]
fn different_seeds_actually_diverge() {
    // Guard against the degenerate way to "pass" the test above: a
    // campaign that ignores its seed entirely.
    let a = run_campaign(&small());
    let mut p = small();
    p.seed = 12;
    let b = run_campaign(&p);
    assert!(
        a.rows
            .iter()
            .zip(&b.rows)
            .any(|(ra, rb)| ra.journal != rb.journal),
        "changing the seed changed nothing — campaign is not seeded"
    );
}
