//! Satellite of the work-stealing substrate: the parallel grid must be
//! bit-identical to a forced single-thread run, cell for cell. Every jitter
//! stream is derived from explicit (mix, level, policy, job) seeds, so the
//! fanout order — and the number of workers — must not matter.

use pmstack_experiments::grid::{run_mix, EvaluationGrid, GridParams};
use pmstack_experiments::mixes::MixKind;
use pmstack_experiments::Testbed;

fn assert_cells_identical(
    a: &pmstack_experiments::grid::GridCell,
    b: &pmstack_experiments::grid::GridCell,
) {
    assert_eq!(a.mix, b.mix);
    assert_eq!(a.level, b.level);
    assert_eq!(a.policy, b.policy);
    assert_eq!(
        a.total_power.value().to_bits(),
        b.total_power.value().to_bits(),
        "{} {} {}: total_power differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.mean_elapsed.value().to_bits(),
        b.mean_elapsed.value().to_bits(),
        "{} {} {}: mean_elapsed differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.energy.value().to_bits(),
        b.energy.value().to_bits(),
        "{} {} {}: energy differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.edp.to_bits(),
        b.edp.to_bits(),
        "{} {} {}: edp differs",
        a.mix,
        a.level,
        a.policy
    );
}

/// The full 90-cell grid evaluated on the pool equals the same grid
/// evaluated inline on one thread, bit for bit.
#[test]
fn parallel_grid_matches_sequential_cell_for_cell() {
    let testbed = Testbed::new(400, 7);
    let params = GridParams::fast();

    let parallel = EvaluationGrid::run(&testbed, params);
    let sequential = pmstack_exec::sequential_scope(|| EvaluationGrid::run(&testbed, params));

    assert_eq!(parallel.cells.len(), sequential.cells.len());
    for (a, b) in parallel.cells.iter().zip(&sequential.cells) {
        assert_cells_identical(a, b);
    }
}

/// `run_mix` emits exactly the cells of the corresponding grid slice, in
/// the same order and with the same numbers.
#[test]
fn run_mix_is_a_slice_of_the_grid() {
    let testbed = Testbed::new(400, 7);
    let params = GridParams::fast();

    let grid = EvaluationGrid::run(&testbed, params);
    for kind in [MixKind::NeedUsedPower, MixKind::RandomLarge] {
        let standalone = run_mix(&testbed, kind, params);
        let slice: Vec<_> = grid.cells.iter().filter(|c| c.mix == kind).collect();
        assert_eq!(standalone.len(), slice.len());
        for (a, b) in standalone.iter().zip(slice) {
            assert_cells_identical(a, b);
        }
    }
}

/// The keyed lookup agrees with a linear scan for every cell.
#[test]
fn keyed_cell_lookup_matches_linear_scan() {
    let testbed = Testbed::new(400, 7);
    let grid = EvaluationGrid::run(&testbed, GridParams::fast());
    for c in &grid.cells {
        let found = grid.cell(c.mix, c.level, c.policy);
        assert_eq!(
            found.total_power.value().to_bits(),
            c.total_power.value().to_bits()
        );
        assert_eq!(
            found.mean_elapsed.value().to_bits(),
            c.mean_elapsed.value().to_bits()
        );
    }
}
