//! Satellite of the work-stealing substrate: the parallel grid must be
//! bit-identical to a forced single-thread run, cell for cell. Every jitter
//! stream is derived from explicit (mix, level, policy, job) seeds, so the
//! fanout order — and the number of workers — must not matter.

use pmstack_experiments::grid::{run_mix, EvaluationGrid, GridParams};
use pmstack_experiments::mixes::MixKind;
use pmstack_experiments::Testbed;

fn assert_cells_identical(
    a: &pmstack_experiments::grid::GridCell,
    b: &pmstack_experiments::grid::GridCell,
) {
    assert_eq!(a.mix, b.mix);
    assert_eq!(a.level, b.level);
    assert_eq!(a.policy, b.policy);
    assert_eq!(
        a.total_power.value().to_bits(),
        b.total_power.value().to_bits(),
        "{} {} {}: total_power differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.mean_elapsed.value().to_bits(),
        b.mean_elapsed.value().to_bits(),
        "{} {} {}: mean_elapsed differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.energy.value().to_bits(),
        b.energy.value().to_bits(),
        "{} {} {}: energy differs",
        a.mix,
        a.level,
        a.policy
    );
    assert_eq!(
        a.edp.to_bits(),
        b.edp.to_bits(),
        "{} {} {}: edp differs",
        a.mix,
        a.level,
        a.policy
    );
}

/// The full 90-cell grid evaluated on the pool equals the same grid
/// evaluated inline on one thread, bit for bit.
#[test]
fn parallel_grid_matches_sequential_cell_for_cell() {
    let testbed = Testbed::new(400, 7);
    let params = GridParams::fast();

    let parallel = EvaluationGrid::run(&testbed, params);
    let sequential = pmstack_exec::sequential_scope(|| EvaluationGrid::run(&testbed, params));

    assert_eq!(parallel.cells.len(), sequential.cells.len());
    for (a, b) in parallel.cells.iter().zip(&sequential.cells) {
        assert_cells_identical(a, b);
    }
}

/// `run_mix` emits exactly the cells of the corresponding grid slice, in
/// the same order and with the same numbers.
#[test]
fn run_mix_is_a_slice_of_the_grid() {
    let testbed = Testbed::new(400, 7);
    let params = GridParams::fast();

    let grid = EvaluationGrid::run(&testbed, params);
    for kind in [MixKind::NeedUsedPower, MixKind::RandomLarge] {
        let standalone = run_mix(&testbed, kind, params);
        let slice: Vec<_> = grid.cells.iter().filter(|c| c.mix == kind).collect();
        assert_eq!(standalone.len(), slice.len());
        for (a, b) in standalone.iter().zip(slice) {
            assert_cells_identical(a, b);
        }
    }
}

/// The keyed lookup agrees with a linear scan for every cell.
#[test]
fn keyed_cell_lookup_matches_linear_scan() {
    let testbed = Testbed::new(400, 7);
    let grid = EvaluationGrid::run(&testbed, GridParams::fast());
    for c in &grid.cells {
        let found = grid.cell(c.mix, c.level, c.policy);
        assert_eq!(
            found.total_power.value().to_bits(),
            c.total_power.value().to_bits()
        );
        assert_eq!(
            found.mean_elapsed.value().to_bits(),
            c.mean_elapsed.value().to_bits()
        );
    }
}

/// Full-stack fast-forward determinism: a coordinator run with the
/// steady-state caches enabled is bit-identical to the same run forced
/// through the full resolve-and-step pipeline every iteration — clean,
/// jittered, and under a fault plan.
#[test]
fn coordinator_fast_forward_matches_full_pipeline() {
    use pmstack_core::policies::by_kind;
    use pmstack_core::{Coordinator, CoordinatorMode, MixRun, PolicyKind};
    use pmstack_experiments::mixes::build_scaled;
    use pmstack_simhw::{quartz_spec, Cluster, FaultPlan, VariationProfile, Watts};

    let workload = build_scaled(MixKind::NeedUsedPower, 3);
    let total = workload.total_nodes();
    let cluster = Cluster::builder(quartz_spec())
        .nodes(total)
        .variation(VariationProfile::quartz())
        .seed(11)
        .build()
        .unwrap();
    let budget = Watts(185.0 * total as f64);
    let policy = by_kind(PolicyKind::JobAdaptive);

    let assert_runs_identical = |a: &MixRun, b: &MixRun| {
        assert_eq!(a.reports.len(), b.reports.len());
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.elapsed.value().to_bits(), rb.elapsed.value().to_bits());
            assert_eq!(ra.energy.value().to_bits(), rb.energy.value().to_bits());
            assert_eq!(ra.iteration_times.len(), rb.iteration_times.len());
            for (ta, tb) in ra.iteration_times.iter().zip(&rb.iteration_times) {
                assert_eq!(ta.value().to_bits(), tb.value().to_bits());
            }
            for (ha, hb) in ra.hosts.iter().zip(&rb.hosts) {
                assert_eq!(ha.energy.value().to_bits(), hb.energy.value().to_bits());
                assert_eq!(
                    ha.final_limit.value().to_bits(),
                    hb.final_limit.value().to_bits()
                );
                assert_eq!(
                    ha.mean_epoch.value().to_bits(),
                    hb.mean_epoch.value().to_bits()
                );
            }
        }
    };

    // Clean: the fast-forward replay engages once enforcement settles.
    let base = Coordinator::new(&cluster);
    let with_ff = base.run_mix(
        &workload.jobs,
        policy.as_ref(),
        budget,
        120,
        CoordinatorMode::Emulated,
    );
    let without_ff = Coordinator::new(&cluster).with_fast_forward(false).run_mix(
        &workload.jobs,
        policy.as_ref(),
        budget,
        120,
        CoordinatorMode::Emulated,
    );
    assert_runs_identical(&with_ff, &without_ff);

    // Jittered: only the settled operating-point cache can engage.
    let with_ff = Coordinator::new(&cluster).with_jitter(0.01, 23).run_mix(
        &workload.jobs,
        policy.as_ref(),
        budget,
        120,
        CoordinatorMode::Emulated,
    );
    let without_ff = Coordinator::new(&cluster)
        .with_jitter(0.01, 23)
        .with_fast_forward(false)
        .run_mix(
            &workload.jobs,
            policy.as_ref(),
            budget,
            120,
            CoordinatorMode::Emulated,
        );
    assert_runs_identical(&with_ff, &without_ff);

    // Faulted: every cache must disarm exactly at the event boundaries.
    let plan = FaultPlan::randomized(5, total, 120, 4);
    let with_ff = Coordinator::new(&cluster)
        .with_fault_plan(plan.clone())
        .run_mix(
            &workload.jobs,
            policy.as_ref(),
            budget,
            120,
            CoordinatorMode::Emulated,
        );
    let without_ff = Coordinator::new(&cluster)
        .with_fault_plan(plan)
        .with_fast_forward(false)
        .run_mix(
            &workload.jobs,
            policy.as_ref(),
            budget,
            120,
            CoordinatorMode::Emulated,
        );
    assert_runs_identical(&with_ff, &without_ff);
}
