//! The heterogeneous-fleet scenario (`repro hetero`).
//!
//! Runs the five §III policies twice — once on a homogeneous one-class
//! fleet and once on a three-class fleet (quartz / skylake_sp / stout) —
//! with the full multi-domain power plumbing live:
//!
//! * every job is characterized **per (app, class)** pair
//!   ([`JobChar::analytic_classed`]), so the same application carries
//!   different used/needed numbers on each class;
//! * the policy's per-host caps are admitted through the resource
//!   manager's [`DomainLedger`], splitting each job's node grant into
//!   PKG-rest / PP0 / DRAM domain budgets;
//! * each tick the fleet steps as a [`ClassedBank`] (per-class column
//!   segments, per-domain energy meters), the [`DomainBalancer`] shifts
//!   watts between domains within hosts, and the shifted splits are
//!   reprogrammed into the simulated PP0/DRAM limit MSRs;
//! * **every tick** asserts the ledger's containment chain —
//!   Σ domain grants = node grant per job and Σ node grants ≤ fleet
//!   budget — so a per-domain oversubscription anywhere aborts the run.
//!
//! The scenario is deterministic: no jitter, fixed eps spread, analytic
//! characterization, and all rendered aggregates fold in fleet order.

use pmstack_core::{apply_job_runtime, policies, Allocation, JobChar, PolicyCtx, PolicyKind};
use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_rm::{DomainGrant, DomainLedger, JobId};
use pmstack_runtime::DomainBalancer;
use pmstack_simhw::{
    standard_classes, ClassId, ClassModels, ClassedBank, HostStep, NodeClass, RaplDomain, Seconds,
    Watts,
};

/// Scale knobs of the hetero scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeteroParams {
    /// Hosts per (app, class) job.
    pub hosts_per_job: usize,
    /// Control ticks per policy run.
    pub ticks: usize,
    /// Fleet budget as a fraction of the fleet's summed class TDPs. Scarce
    /// enough that static uniform capping strands watts on the low-TDP
    /// class while the adaptive policies reallocate them.
    pub budget_frac: f64,
}

impl HeteroParams {
    /// Default scale: the golden-file configuration.
    pub fn default_scale() -> Self {
        Self {
            hosts_per_job: 6,
            ticks: 60,
            budget_frac: 0.72,
        }
    }

    /// Reduced scale for quick checks (`--fast`).
    pub fn fast() -> Self {
        Self {
            hosts_per_job: 3,
            ticks: 25,
            budget_frac: 0.72,
        }
    }
}

/// The two applications every class runs: a compute-bound solver and a
/// communication-heavy, imbalanced exchange.
fn apps() -> [(&'static str, KernelConfig); 2] {
    [
        ("compute", KernelConfig::balanced_ymm(16.0)),
        (
            "exchange",
            KernelConfig::new(4.0, VectorWidth::Ymm, WaitingFraction::P50, Imbalance::TwoX),
        ),
    ]
}

/// Deterministic manufacturing-variation spread.
fn eps_of(i: usize) -> f64 {
    0.94 + 0.01 * ((i * 7) % 13) as f64
}

/// One policy's outcome on one fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// The policy.
    pub policy: PolicyKind,
    /// Mean job elapsed time over the run, seconds.
    pub mean_elapsed: f64,
    /// Total fleet energy, joules.
    pub energy_j: f64,
    /// Node watts the ledger admitted, as a percentage of the budget.
    pub pct_of_budget: f64,
    /// Within-host domain shifts the balancer applied over the run.
    pub domain_shifts: u64,
}

/// One fleet's five-policy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet label (`homogeneous`, `3-class`).
    pub fleet: &'static str,
    /// Node classes backing the fleet.
    pub classes: Vec<String>,
    /// Total hosts.
    pub hosts: usize,
    /// The fleet power budget.
    pub budget: Watts,
    /// One row per policy, [`PolicyKind::all`] order.
    pub rows: Vec<PolicyRow>,
}

/// The full scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroReport {
    /// Homogeneous fleet first, then the three-class fleet.
    pub fleets: Vec<FleetReport>,
}

/// One job: an app pinned to one class's sub-fleet.
struct JobPlan {
    config: KernelConfig,
    class: ClassId,
    /// Global host indices, contiguous.
    hosts: Vec<usize>,
}

struct Fleet {
    label: &'static str,
    classes: Vec<NodeClass>,
    jobs: Vec<JobPlan>,
    membership: Vec<ClassId>,
    eps: Vec<f64>,
}

fn build_fleet(label: &'static str, classes: Vec<NodeClass>, hosts_per_job: usize) -> Fleet {
    let mut jobs = Vec::new();
    let mut membership = Vec::new();
    let mut eps = Vec::new();
    for (_, config) in apps() {
        for c in 0..classes.len() {
            let base = membership.len();
            let hosts: Vec<usize> = (base..base + hosts_per_job).collect();
            for &h in &hosts {
                membership.push(ClassId(c));
                eps.push(eps_of(h));
            }
            jobs.push(JobPlan {
                config,
                class: ClassId(c),
                hosts,
            });
        }
    }
    Fleet {
        label,
        classes,
        jobs,
        membership,
        eps,
    }
}

/// Split a job's node grant into per-domain wants from its class's domain
/// configuration: PP0 gets its plane fraction, DRAM its fixed draw per
/// host, PKG-rest the remainder. A PKG-only class keeps everything in
/// PKG-rest.
fn domain_want(class: &NodeClass, total: Watts, hosts: usize) -> DomainGrant {
    match &class.domains {
        Some(cfg) => {
            let pp0 = total * cfg.pp0_fraction;
            let dram = Watts(
                (cfg.dram_power.value() * hosts as f64)
                    .min(total.value() - pp0.value())
                    .max(0.0),
            );
            [total - pp0 - dram, pp0, dram]
        }
        None => [total, Watts::ZERO, Watts::ZERO],
    }
}

/// Run one policy on one fleet.
fn run_policy(
    fleet: &Fleet,
    policy: PolicyKind,
    params: &HeteroParams,
    budget: Watts,
) -> PolicyRow {
    let models = ClassModels::new(&fleet.classes).expect("classes are valid");
    let mut bank = ClassedBank::new(fleet.classes.clone(), &fleet.membership, &fleet.eps)
        .expect("fleet layout is valid");
    let n = fleet.membership.len();

    // Per-(app, class) characterization, one JobChar per job.
    let chars: Vec<JobChar> = fleet
        .jobs
        .iter()
        .map(|j| {
            let eps: Vec<f64> = j.hosts.iter().map(|&h| fleet.eps[h]).collect();
            let membership = vec![j.class; eps.len()];
            JobChar::analytic_classed(j.config, &models, &membership, &eps)
        })
        .collect();

    // The policy works in the widest settable envelope; each host's cap is
    // then clamped into its own class's range below.
    let min_node = fleet
        .classes
        .iter()
        .map(|c| c.spec.min_rapl_per_node())
        .fold(Watts(f64::MAX), Watts::min);
    let tdp_node = fleet
        .classes
        .iter()
        .map(|c| c.spec.tdp_per_node())
        .fold(Watts::ZERO, Watts::max);
    let ctx = PolicyCtx {
        system_budget: budget,
        min_node,
        tdp_node,
    };
    let policy_impl = policies::by_kind(policy);
    let mut alloc = policy_impl.allocate(&ctx, &chars);
    if policy_impl.application_aware() {
        alloc = apply_job_runtime(&alloc, &chars, &ctx);
    }
    clamp_to_classes(&mut alloc, fleet);

    // Admission: every job's node grant splits into per-domain budgets.
    // Zero floor = degraded admission; an over-subscribing policy (the
    // paper's Precharacterized) gets partial grants instead of free watts.
    let mut ledger = DomainLedger::new(budget);
    let mut admitted = Watts::ZERO;
    for (j, plan) in fleet.jobs.iter().enumerate() {
        let want_total = alloc.job_total(j);
        let class = &fleet.classes[plan.class.0];
        let want = domain_want(class, want_total, plan.hosts.len());
        let granted = ledger
            .reserve_domains(JobId(j as u64), want, Watts::ZERO)
            .expect("zero-floor admission cannot overcommit");
        let total: Watts = granted.iter().copied().sum();
        admitted += total;
        // Scale the job's host caps onto what the ledger actually granted.
        let scale = if want_total > Watts::ZERO {
            (total / want_total.value()).value()
        } else {
            0.0
        };
        for (slot, &h) in plan.hosts.iter().enumerate() {
            let cap = (alloc.jobs[j][slot] * scale)
                .clamp(class.spec.min_rapl_per_node(), class.spec.tdp_per_node());
            bank.set_power_limit(h, cap).expect("cap is in class range");
        }
        program_domain_limits(&mut bank, plan, &granted);
    }

    // Per-job loads are (app, class) pairs too.
    let loads: Vec<KernelLoad> = fleet
        .jobs
        .iter()
        .map(|j| KernelLoad::new(j.config, models.model(j.class).spec()))
        .collect();
    let job_of: Vec<usize> = {
        let mut v = vec![0usize; n];
        for (j, plan) in fleet.jobs.iter().enumerate() {
            for &h in &plan.hosts {
                v[h] = j;
            }
        }
        v
    };

    let balancer = DomainBalancer::new();
    let mut ops = vec![None; n];
    let mut results = vec![HostStep::Skipped; n];
    let mut job_elapsed = vec![0.0f64; fleet.jobs.len()];
    let mut domain_shifts = 0u64;

    for _ in 0..params.ticks {
        let mut dt = Seconds::ZERO;
        let mut job_tick = vec![0.0f64; fleet.jobs.len()];
        for h in 0..n {
            let j = job_of[h];
            let op = bank.operating_point(h, &loads[j]);
            let t = loads[j].iteration_time(&op);
            dt = dt.max(t);
            job_tick[j] = job_tick[j].max(t.value());
            ops[h] = Some(op);
        }
        for (e, t) in job_elapsed.iter_mut().zip(&job_tick) {
            *e += t;
        }
        bank.step_all(dt, &ops, &mut results, false);

        // Metered per-domain draws feed the within-host balancer; grants
        // are each host's even share of its job's domain split.
        let mut grants = vec![[Watts::ZERO; 3]; n];
        let mut demands = vec![[Watts::ZERO; 3]; n];
        for h in 0..n {
            let j = job_of[h];
            let plan = &fleet.jobs[j];
            let split = ledger.grant(JobId(j as u64)).expect("job admitted");
            let share = 1.0 / plan.hosts.len() as f64;
            grants[h] = [split[0] * share, split[1] * share, split[2] * share];
            let power = ops[h].as_ref().map_or(Watts::ZERO, |op| op.power);
            demands[h] = match &fleet.classes[plan.class.0].domains {
                Some(cfg) => {
                    let pp0 = power * cfg.pp0_fraction;
                    let dram = if power > Watts::ZERO {
                        Watts(
                            cfg.dram_power.value()
                                * bank.class(plan.class).spec.sockets_per_node as f64,
                        )
                    } else {
                        Watts::ZERO
                    };
                    [power - pp0 - dram, pp0, dram]
                }
                None => [power, Watts::ZERO, Watts::ZERO],
            };
        }
        let shifts = balancer.plan(&grants, &demands);
        let mut touched: Vec<usize> = Vec::new();
        for s in &shifts {
            let j = job_of[s.host];
            let moved = ledger.shift(JobId(j as u64), s.from, s.to, s.watts);
            if moved > Watts::ZERO {
                domain_shifts += 1;
                if !touched.contains(&j) {
                    touched.push(j);
                }
            }
        }
        for &j in &touched {
            let granted = ledger.grant(JobId(j as u64)).expect("job admitted");
            program_domain_limits(&mut bank, &fleet.jobs[j], &granted);
        }

        // The per-tick oversubscription gate: Σ domain grants = node grant
        // for every job, Σ node grants ≤ fleet budget.
        ledger
            .check_invariants()
            .expect("per-domain budgets oversubscribed");
    }

    let energy_j: f64 = (0..n).map(|h| bank.energy(h).value()).sum();
    let mean_elapsed = job_elapsed.iter().sum::<f64>() / job_elapsed.len() as f64;
    PolicyRow {
        policy,
        mean_elapsed,
        energy_j,
        pct_of_budget: 100.0 * admitted.value() / budget.value(),
        domain_shifts,
    }
}

/// Clamp every host's cap into its own class's settable range (the policy
/// allocated in the widest envelope).
fn clamp_to_classes(alloc: &mut Allocation, fleet: &Fleet) {
    for (j, plan) in fleet.jobs.iter().enumerate() {
        let spec = &fleet.classes[plan.class.0].spec;
        for cap in &mut alloc.jobs[j] {
            *cap = cap.clamp(spec.min_rapl_per_node(), spec.tdp_per_node());
        }
    }
}

/// Program each host's PP0/DRAM limit registers from its even share of the
/// job's domain split. PKG-only classes have no sub-domain registers; the
/// node-level PKG limit already carries their whole grant.
fn program_domain_limits(bank: &mut ClassedBank, plan: &JobPlan, granted: &DomainGrant) {
    if bank.class(plan.class).domains.is_none() {
        return;
    }
    let share = 1.0 / plan.hosts.len() as f64;
    for &h in &plan.hosts {
        for (d, want) in [
            (RaplDomain::Pp0, granted[RaplDomain::Pp0.index()] * share),
            (RaplDomain::Dram, granted[RaplDomain::Dram.index()] * share),
        ] {
            // The plane clamps into its own range; a healthy host never
            // rejects, and a stuck plane latching is not an error here.
            let _ = bank.set_domain_limit(h, d, want);
        }
    }
}

/// Run the scenario: all five policies on the homogeneous fleet, then on
/// the three-class fleet.
pub fn run_hetero(params: &HeteroParams) -> HeteroReport {
    let all = standard_classes();
    let fleets = [
        build_fleet("homogeneous", vec![all[0].clone()], params.hosts_per_job),
        build_fleet("3-class", all.to_vec(), params.hosts_per_job),
    ];
    let reports: Vec<FleetReport> = fleets
        .iter()
        .map(|fleet| {
            let budget = Watts(
                fleet
                    .membership
                    .iter()
                    .map(|c| fleet.classes[c.0].spec.tdp_per_node().value())
                    .sum::<f64>()
                    * params.budget_frac,
            );
            let rows = PolicyKind::all()
                .iter()
                .map(|&policy| run_policy(fleet, policy, params, budget))
                .collect();
            FleetReport {
                fleet: fleet.label,
                classes: fleet.classes.iter().map(|c| c.name.clone()).collect(),
                hosts: fleet.membership.len(),
                budget,
                rows,
            }
        })
        .collect();
    HeteroReport { fleets: reports }
}

/// Render the report as a text artifact (byte-stable across runs).
pub fn render(report: &HeteroReport) -> String {
    use pmstack_analysis::render::table;
    use std::fmt::Write as _;
    let mut out = String::from("HETEROGENEOUS FLEET: 5 POLICIES x {homogeneous, 3-class}\n");
    for f in &report.fleets {
        let _ = write!(
            out,
            "\n{} fleet: {} hosts [{}], budget {:.0} W\n",
            f.fleet,
            f.hosts,
            f.classes.join(", "),
            f.budget.value(),
        );
        let header = ["policy", "elapsed_s", "energy_J", "%budget", "dom_shifts"];
        let rows: Vec<Vec<String>> = f
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    format!("{:.4}", r.mean_elapsed),
                    format!("{:.1}", r.energy_j),
                    format!("{:.1}", r.pct_of_budget),
                    r.domain_shifts.to_string(),
                ]
            })
            .collect();
        out.push_str(&table(&header, &rows));
        out.push('\n');
    }
    out.push_str(
        "\nper-tick ledger invariant held: sum(domain grants) = node grant <= fleet budget\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_both_fleets_under_all_policies() {
        pmstack_obs::enable();
        let report = run_hetero(&HeteroParams::fast());
        assert_eq!(report.fleets.len(), 2);
        assert_eq!(report.fleets[0].fleet, "homogeneous");
        assert_eq!(report.fleets[1].fleet, "3-class");
        assert_eq!(report.fleets[1].classes.len(), 3);
        for f in &report.fleets {
            assert_eq!(f.rows.len(), 5);
            for r in &f.rows {
                assert!(r.mean_elapsed > 0.0, "{} {}", f.fleet, r.policy);
                assert!(r.energy_j > 0.0);
                assert!(r.pct_of_budget <= 100.0 + 1e-6, "{} {}", f.fleet, r.policy);
            }
        }
    }

    #[test]
    fn mixed_adaptive_beats_static_uniform_capping_on_the_3_class_fleet() {
        let report = run_hetero(&HeteroParams::fast());
        let hetero = &report.fleets[1];
        let row = |p: PolicyKind| hetero.rows.iter().find(|r| r.policy == p).unwrap();
        let static_caps = row(PolicyKind::StaticCaps);
        let mixed = row(PolicyKind::MixedAdaptive);
        assert!(
            mixed.mean_elapsed < static_caps.mean_elapsed,
            "MixedAdaptive {:.4}s should beat StaticCaps {:.4}s on the 3-class fleet",
            mixed.mean_elapsed,
            static_caps.mean_elapsed
        );
    }

    #[test]
    fn domain_balancer_finds_work_on_the_domain_fleet() {
        let report = run_hetero(&HeteroParams::fast());
        let shifts: u64 = report.fleets[1].rows.iter().map(|r| r.domain_shifts).sum();
        assert!(
            shifts > 0,
            "no within-host domain shifts over the whole run"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_hetero(&HeteroParams::fast());
        let b = run_hetero(&HeteroParams::fast());
        for (fa, fb) in a.fleets.iter().zip(&b.fleets) {
            for (ra, rb) in fa.rows.iter().zip(&fb.rows) {
                assert_eq!(ra.mean_elapsed.to_bits(), rb.mean_elapsed.to_bits());
                assert_eq!(ra.energy_j.to_bits(), rb.energy_j.to_bits());
                assert_eq!(ra.domain_shifts, rb.domain_shifts);
            }
        }
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn render_names_every_policy_and_fleet() {
        let text = render(&run_hetero(&HeteroParams::fast()));
        for name in [
            "homogeneous",
            "3-class",
            "StaticCaps",
            "MixedAdaptive",
            "quartz",
            "skylake",
            "stout",
        ] {
            assert!(text.contains(name), "render missing {name}");
        }
    }
}
