//! Facility-scale simulation behind Fig. 1.
//!
//! The paper motivates the whole problem with a year of operational data
//! from Quartz: a 1.35 MW-rated system whose average draw is ~0.83 MW. We
//! cannot replay LLNL's job logs, so this module simulates the year with
//! the stack's own components: a seeded job-arrival process feeds the
//! `pmstack-rm` FIFO scheduler over the full cluster; running jobs draw the
//! *uncapped characterized power* of a randomly drawn kernel configuration;
//! idle nodes draw idle power. Facility power adds a fixed non-CPU share
//! per node. The reproduced property is the paper's motivating gap between
//! procured and consumed power.

use pmstack_kernel::{Imbalance, KernelConfig, KernelLoad, VectorWidth, WaitingFraction};
use pmstack_rm::{FifoScheduler, JobId, JobSpec, NodePool, PowerLedger, SchedulerEvent};
use pmstack_simhw::{quartz_spec, PowerModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the facility simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacilityParams {
    /// Cluster size (Quartz: ~2688 nodes).
    pub nodes: usize,
    /// Simulated days.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
    /// Non-CPU power per node (DRAM, fans, NIC, PSU losses).
    pub non_cpu_w: f64,
    /// CPU power of an idle node.
    pub idle_cpu_w: f64,
    /// Mean job arrivals per hour at the baseline season.
    pub arrivals_per_hour: f64,
}

impl Default for FacilityParams {
    fn default() -> Self {
        Self {
            nodes: 2688,
            days: 365,
            seed: 42,
            non_cpu_w: 140.0,
            idle_cpu_w: 80.0,
            arrivals_per_hour: 1.9,
        }
    }
}

/// The simulated year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FacilityTrace {
    /// Mean facility power per day, megawatts.
    pub daily_mw: Vec<f64>,
    /// Mean node utilization per day, `[0, 1]`.
    pub daily_utilization: Vec<f64>,
    /// Jobs completed over the simulation.
    pub jobs_completed: usize,
}

impl FacilityTrace {
    /// Annual mean power in MW.
    pub fn mean_mw(&self) -> f64 {
        self.daily_mw.iter().sum::<f64>() / self.daily_mw.len() as f64
    }

    /// Annual peak of the daily means in MW.
    pub fn peak_mw(&self) -> f64 {
        self.daily_mw.iter().copied().fold(0.0, f64::max)
    }
}

/// A running job: its nodes and remaining hours.
struct RunningJob {
    id: JobId,
    nodes: usize,
    cpu_w_per_node: f64,
    remaining_hours: u32,
}

/// Simulate the facility for the given parameters.
pub fn simulate(params: &FacilityParams) -> FacilityTrace {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).expect("quartz spec is valid");
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);

    // Pre-characterize the workload population's uncapped per-node power.
    let population: Vec<f64> = workload_population()
        .into_iter()
        .map(|c| {
            use pmstack_simhw::LoadModel;
            KernelLoad::new(c, &spec)
                .operating_point(&model, 1.0, spec.tdp_per_node())
                .power
                .value()
        })
        .collect();

    let mut scheduler = FifoScheduler::new(
        NodePool::new(params.nodes),
        // Power is admission-controlled at the rated CPU envelope.
        PowerLedger::new(spec.tdp_per_node() * params.nodes as f64),
        spec.tdp_per_node(),
    );
    let mut running: Vec<RunningJob> = Vec::new();
    let mut pending_power: Vec<(JobId, f64, u32)> = Vec::new();
    let mut completed = 0usize;

    let mut daily_mw = Vec::with_capacity(params.days);
    let mut daily_utilization = Vec::with_capacity(params.days);

    for day in 0..params.days {
        let mut power_sum_w = 0.0;
        let mut util_sum = 0.0;

        for _hour in 0..24 {
            // Arrivals: Poisson at the seasonally modulated hourly rate.
            let rate = arrival_rate(day, params.arrivals_per_hour);
            let arrivals = poisson(&mut rng, rate);
            for _ in 0..arrivals {
                let nodes = job_size(&mut rng);
                let hours = 1 + rng.gen_range(0..16) + rng.gen_range(0..16);
                let cpu_w = population[rng.gen_range(0..population.len())];
                let id = scheduler.submit(JobSpec::new("facility", nodes));
                pending_power.push((id, cpu_w, hours as u32));
            }
            // Start whatever fits.
            for event in scheduler.tick() {
                if let SchedulerEvent::Started { job, nodes, .. } = event {
                    let (_, cpu_w, hours) = *pending_power
                        .iter()
                        .find(|(id, _, _)| *id == job)
                        .expect("started job was submitted");
                    pending_power.retain(|(id, _, _)| *id != job);
                    running.push(RunningJob {
                        id: job,
                        nodes: nodes.len(),
                        cpu_w_per_node: cpu_w,
                        remaining_hours: hours,
                    });
                }
            }
            // Account this hour's power.
            let busy_nodes: usize = running.iter().map(|j| j.nodes).sum();
            let idle_nodes = params.nodes - busy_nodes;
            let cpu_power: f64 = running
                .iter()
                .map(|j| j.nodes as f64 * j.cpu_w_per_node)
                .sum::<f64>()
                + idle_nodes as f64 * params.idle_cpu_w;
            let facility_w = cpu_power + params.nodes as f64 * params.non_cpu_w;
            power_sum_w += facility_w;
            util_sum += busy_nodes as f64 / params.nodes as f64;

            // Advance job clocks.
            for job in &mut running {
                job.remaining_hours -= 1;
            }
            let (done, still): (Vec<_>, Vec<_>) =
                running.drain(..).partition(|j| j.remaining_hours == 0);
            running = still;
            for job in done {
                scheduler.complete(job.id);
                completed += 1;
            }
        }
        daily_mw.push(power_sum_w / 24.0 / 1e6);
        daily_utilization.push(util_sum / 24.0);
    }

    FacilityTrace {
        daily_mw,
        daily_utilization,
        jobs_completed: completed,
    }
}

/// The seasonally and weekly modulated job arrival rate (jobs/hour) for a
/// given day of the simulation.
pub fn arrival_rate(day: usize, base_per_hour: f64) -> f64 {
    let season = 1.0 + 0.10 * (2.0 * std::f64::consts::PI * day as f64 / 365.0).sin();
    let weekday = if day % 7 < 5 { 1.06 } else { 0.88 };
    base_per_hour * season * weekday
}

/// The workload population jobs draw from: the full heat-map space.
/// Shared with the fault-tolerant campaign in [`crate::campaign`].
pub(crate) fn workload_population() -> Vec<KernelConfig> {
    let mut space = Vec::new();
    for &i in &KernelConfig::heatmap_intensities() {
        for v in [VectorWidth::Xmm, VectorWidth::Ymm] {
            space.push(KernelConfig::new(
                i,
                v,
                WaitingFraction::P0,
                Imbalance::Balanced,
            ));
            space.push(KernelConfig::new(
                i,
                v,
                WaitingFraction::P50,
                Imbalance::TwoX,
            ));
        }
    }
    space
}

/// Job node-count distribution: mostly small, occasionally large — the
/// shape of real HPC queues.
pub(crate) fn job_size<R: Rng>(rng: &mut R) -> usize {
    match rng.gen_range(0..100) {
        0..=49 => rng.gen_range(1..=16),
        50..=79 => rng.gen_range(17..=64),
        80..=94 => rng.gen_range(65..=256),
        _ => rng.gen_range(257..=512),
    }
}

/// Knuth Poisson sampling (rates here are small).
pub(crate) fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // unreachable for sane rates; guards against λ→∞
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> FacilityParams {
        FacilityParams {
            nodes: 512,
            days: 60,
            seed: 7,
            arrivals_per_hour: 0.65,
            ..FacilityParams::default()
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = simulate(&quick_params());
        let b = simulate(&quick_params());
        assert_eq!(a, b);
    }

    #[test]
    fn power_respects_physical_bounds() {
        let p = quick_params();
        let trace = simulate(&p);
        let floor_mw = p.nodes as f64 * (p.idle_cpu_w + p.non_cpu_w) / 1e6;
        let ceiling_mw = p.nodes as f64 * (240.0 + p.non_cpu_w) / 1e6;
        for &mw in &trace.daily_mw {
            assert!(mw >= floor_mw - 1e-9, "below idle floor: {mw}");
            assert!(mw <= ceiling_mw + 1e-9, "above TDP ceiling: {mw}");
        }
        for &u in &trace.daily_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn cluster_is_meaningfully_but_not_fully_utilized() {
        let trace = simulate(&quick_params());
        let mean_util =
            trace.daily_utilization.iter().sum::<f64>() / trace.daily_utilization.len() as f64;
        assert!(
            (0.3..0.95).contains(&mean_util),
            "mean utilization {mean_util}"
        );
        assert!(
            trace.jobs_completed > 100,
            "only {} jobs",
            trace.jobs_completed
        );
    }

    #[test]
    fn arrival_rate_has_weekly_and_seasonal_structure() {
        // The trace itself smears arrival modulation through multi-hour
        // jobs and queueing (as real clusters do), so the demand model is
        // tested directly.
        // Weekday rates beat weekend rates.
        assert!(arrival_rate(0, 1.0) > arrival_rate(5, 1.0));
        assert!(arrival_rate(8, 1.0) > arrival_rate(6, 1.0));
        // Seasonal peak (~day 91) beats the trough (~day 273); both days
        // fall on weekdays, so the weekday factor cancels.
        assert!(arrival_rate(91, 1.0) > arrival_rate(273, 1.0));
        // Rates scale linearly with the base.
        let r = arrival_rate(10, 2.0) / arrival_rate(10, 1.0);
        assert!((r - 2.0).abs() < 1e-12);
    }
}
