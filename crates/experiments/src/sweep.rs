//! Continuous budget sweeps.
//!
//! The paper evaluates three budget points per mix (min/ideal/max); this
//! module sweeps the whole axis between the cluster's hardware floor and
//! TDP, tracking each policy's savings as a continuous curve. The sweep
//! answers the reproduction-quality question the three-point grid cannot:
//! *where the crossovers fall* — the budget at which application awareness
//! starts and stops paying, and where `MixedAdaptive` separates from
//! `JobAdaptive`.

use crate::mixes::{self, MixKind};
use crate::testbed::Testbed;
use pmstack_core::{apply_job_runtime, evaluate_mix, policies, JobChar, PolicyCtx, PolicyKind};
use pmstack_simhw::Watts;
use serde::{Deserialize, Serialize};

/// One point of a sweep: a budget and each policy's metrics at it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// System budget at this point.
    pub budget: Watts,
    /// Budget as a fraction of the span from the hardware floor to TDP.
    pub budget_frac: f64,
    /// Per-policy `(time savings %, energy savings %)` vs `StaticCaps`,
    /// in [`PolicyKind::dynamic`] order.
    pub savings: Vec<(f64, f64)>,
}

/// A full sweep over one mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSweep {
    /// The mix swept.
    pub mix: MixKind,
    /// Points, ascending budget.
    pub points: Vec<SweepPoint>,
}

impl BudgetSweep {
    /// Run a sweep with `steps` budget points over `mix`.
    pub fn run(testbed: &Testbed, mix_kind: MixKind, nodes_per_job: usize, steps: usize) -> Self {
        assert!(steps >= 2, "a sweep needs at least two points");
        let mix = mixes::build_scaled(mix_kind, nodes_per_job);
        let setups = testbed.place(&mix);
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, testbed.model(), &s.host_eps))
            .collect();
        let spec = testbed.model().spec();
        let n = mix.total_nodes() as f64;
        let floor = spec.min_rapl_per_node() * n;
        let ceiling = spec.tdp_per_node() * n;

        let points = (0..steps)
            .map(|i| {
                let frac = i as f64 / (steps - 1) as f64;
                let budget = floor + (ceiling - floor) * frac;
                let ctx = PolicyCtx {
                    system_budget: budget,
                    min_node: spec.min_rapl_per_node(),
                    tdp_node: spec.tdp_per_node(),
                };
                let eval = |kind: PolicyKind| {
                    let policy = policies::by_kind(kind);
                    let mut alloc = policy.allocate(&ctx, &chars);
                    if policy.application_aware() {
                        alloc = apply_job_runtime(&alloc, &chars, &ctx);
                    }
                    evaluate_mix(testbed.model(), &setups, &alloc, 1, 0.0, 0)
                };
                let base = eval(PolicyKind::StaticCaps);
                let savings = PolicyKind::dynamic()
                    .iter()
                    .map(|&kind| {
                        let e = eval(kind);
                        (
                            100.0 * (1.0 - e.mean_elapsed() / base.mean_elapsed()),
                            100.0 * (1.0 - e.total_energy() / base.total_energy()),
                        )
                    })
                    .collect();
                SweepPoint {
                    budget,
                    budget_frac: frac,
                    savings,
                }
            })
            .collect();
        Self {
            mix: mix_kind,
            points,
        }
    }

    /// The lowest budget at which policy `a`'s energy savings exceed
    /// policy `b`'s by more than `margin` percentage points — a crossover
    /// locator. Indices are into [`PolicyKind::dynamic`].
    pub fn energy_crossover(&self, a: usize, b: usize, margin: f64) -> Option<Watts> {
        self.points
            .iter()
            .find(|p| p.savings[a].1 > p.savings[b].1 + margin)
            .map(|p| p.budget)
    }

    /// The budget with the largest time savings for a dynamic policy.
    pub fn peak_time_savings(&self, policy: usize) -> (Watts, f64) {
        self.points
            .iter()
            .map(|p| (p.budget, p.savings[policy].0))
            .fold((Watts::ZERO, f64::NEG_INFINITY), |acc, x| {
                if x.1 > acc.1 {
                    x
                } else {
                    acc
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(kind: MixKind) -> BudgetSweep {
        let tb = Testbed::new(300, 7);
        BudgetSweep::run(&tb, kind, 6, 12)
    }

    #[test]
    fn sweep_covers_the_budget_axis_monotonically() {
        let s = sweep(MixKind::WastefulPower);
        assert_eq!(s.points.len(), 12);
        for w in s.points.windows(2) {
            assert!(w[1].budget > w[0].budget);
        }
        assert!((s.points[0].budget_frac - 0.0).abs() < 1e-12);
        assert!((s.points[11].budget_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_savings_grow_along_the_axis_for_wasteful_mixes() {
        let s = sweep(MixKind::WastefulPower);
        let mixed = PolicyKind::dynamic()
            .iter()
            .position(|&p| p == PolicyKind::MixedAdaptive)
            .unwrap();
        let first = s.points.first().unwrap().savings[mixed].1;
        let last = s.points.last().unwrap().savings[mixed].1;
        assert!(
            last > first + 2.0,
            "energy savings should grow along the sweep: {first:.1}% → {last:.1}%"
        );
    }

    #[test]
    fn time_savings_peak_below_the_top_of_the_axis() {
        // Takeaway 1's dual: time-saving opportunity shrinks as budgets
        // relax, so the peak sits in the scarce half of the sweep.
        let s = sweep(MixKind::HighPower);
        let mixed = PolicyKind::dynamic()
            .iter()
            .position(|&p| p == PolicyKind::MixedAdaptive)
            .unwrap();
        let (peak_budget, peak) = s.peak_time_savings(mixed);
        let ceiling = s.points.last().unwrap().budget;
        assert!(peak > 0.5, "some time savings exist: {peak:.2}%");
        assert!(
            peak_budget < ceiling * 0.95,
            "peak at {peak_budget} should sit below the ceiling {ceiling}"
        );
    }

    #[test]
    fn crossover_locator_finds_app_awareness_threshold() {
        // MixedAdaptive (index of dynamic()) vs MinimizeWaste: application
        // awareness starts paying in energy once budgets exceed needs.
        let s = sweep(MixKind::WastefulPower);
        let dynamic = PolicyKind::dynamic();
        let mixed = dynamic
            .iter()
            .position(|&p| p == PolicyKind::MixedAdaptive)
            .unwrap();
        let minwaste = dynamic
            .iter()
            .position(|&p| p == PolicyKind::MinimizeWaste)
            .unwrap();
        let crossover = s.energy_crossover(mixed, minwaste, 1.0);
        assert!(
            crossover.is_some(),
            "application awareness must separate from resource awareness somewhere on the axis"
        );
    }
}
