//! The resilience scenario (`repro faults`).
//!
//! The paper's evaluation assumes hardware that never misbehaves; this
//! scenario asks what each §III policy does when it does. One *fixed,
//! seeded* fault plan — two fail-stop node deaths, a telemetry blackout and
//! a latched RAPL limit — is fired against the same mix under all five
//! policies in [`CoordinatorMode::Online`], and each faulted run is
//! compared with its fault-free twin: slowdown, budget compliance, watts
//! reclaimed by the resource manager, and whether the coordinator
//! re-allocated the survivors. The claim under test is graceful
//! degradation: *no* policy may panic or let the ledger exceed the system
//! budget, whatever the plan does to its nodes.

use crate::mixes::{build_scaled, MixKind};
use pmstack_analysis::render::table;
use pmstack_core::policies::by_kind;
use pmstack_core::{Coordinator, CoordinatorError, CoordinatorMode, MixRun, PolicyKind};
use pmstack_simhw::{faults, quartz_spec, Cluster, FaultPlan, VariationProfile, Watts};

/// Scale knobs of the resilience study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceParams {
    /// Nodes per job of the scaled mix (9 jobs).
    pub nodes_per_job: usize,
    /// Iterations per job.
    pub iterations: usize,
    /// System budget per node, watts.
    pub budget_per_node_w: f64,
    /// Cluster variation seed.
    pub seed: u64,
}

impl ResilienceParams {
    /// Paper-adjacent scale: 9 jobs × 4 nodes, 60 iterations.
    pub fn default_scale() -> Self {
        Self {
            nodes_per_job: 4,
            iterations: 60,
            budget_per_node_w: 185.0,
            seed: 42,
        }
    }

    /// Reduced scale for quick checks (`--fast`).
    pub fn fast() -> Self {
        Self {
            nodes_per_job: 2,
            iterations: 24,
            budget_per_node_w: 185.0,
            seed: 42,
        }
    }
}

/// One policy's behaviour under the fixed fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResilience {
    /// The policy.
    pub kind: PolicyKind,
    /// Mean job elapsed time without faults, seconds.
    pub clean_elapsed_s: f64,
    /// Mean job elapsed time under the fault plan, seconds.
    pub faulted_elapsed_s: f64,
    /// Faulted-run system draw as a fraction of the budget.
    pub draw_frac: f64,
    /// Nodes the plan killed (as seen by the RM).
    pub dead_nodes: usize,
    /// Watts the ledger reclaimed from degraded jobs.
    pub reclaimed_w: f64,
    /// Ledger reservations at run end, watts.
    pub reserved_after_w: f64,
    /// Whether the coordinator re-allocated survivors mid-run.
    pub reallocated: bool,
}

impl PolicyResilience {
    /// Faulted elapsed over clean elapsed.
    pub fn slowdown(&self) -> f64 {
        self.faulted_elapsed_s / self.clean_elapsed_s
    }
}

/// The five-policy resilience comparison under one fixed fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceStudy {
    /// The system budget, watts.
    pub budget_w: f64,
    /// The plan every policy faced.
    pub plan: FaultPlan,
    /// One row per policy, paper order.
    pub rows: Vec<PolicyResilience>,
}

/// The fixed fault plan: scaled to the mix, independent of the policy.
/// Two deaths land inside the first online window (so re-characterization
/// sees them), the soft faults exercise the degraded telemetry paths.
pub fn fixed_plan(total_nodes: usize, iterations: usize) -> FaultPlan {
    let quarter = (iterations / 4).max(1) as u64;
    FaultPlan::scripted(vec![
        faults::kill(1 % total_nodes, quarter),
        faults::kill(total_nodes / 2, quarter + 2),
        faults::telemetry_dropout(total_nodes / 3, 2, 6),
        faults::stuck_rapl(total_nodes - 1, quarter, Watts(170.0)),
    ])
}

/// Run the study.
pub fn run_study(params: ResilienceParams) -> ResilienceStudy {
    let mix = build_scaled(MixKind::WastefulPower, params.nodes_per_job);
    let total = mix.total_nodes();
    let cluster = Cluster::builder(quartz_spec())
        .nodes(total)
        .variation(VariationProfile::quartz())
        .seed(params.seed)
        .build()
        .expect("study cluster builds");
    let budget = Watts(params.budget_per_node_w * total as f64);
    let plan = fixed_plan(total, params.iterations);

    let run = |policy: PolicyKind, with_faults: bool| -> Result<MixRun, CoordinatorError> {
        let mut coord = Coordinator::new(&cluster);
        if with_faults {
            coord = coord.with_fault_plan(plan.clone());
        }
        coord.try_run_mix(
            &mix.jobs,
            by_kind(policy).as_ref(),
            budget,
            params.iterations,
            CoordinatorMode::Online,
        )
    };

    let rows = PolicyKind::all()
        .into_iter()
        .map(|kind| {
            let clean = run(kind, false).expect("fault-free run coordinates");
            let faulted = run(kind, true).expect("graceful degradation: no policy fails the mix");
            let draw: f64 = faulted
                .reports
                .iter()
                .map(|r| r.energy.value() / r.elapsed.value().max(1e-12))
                .sum();
            PolicyResilience {
                kind,
                clean_elapsed_s: clean.mean_elapsed(),
                faulted_elapsed_s: faulted.mean_elapsed(),
                draw_frac: draw / budget.value(),
                dead_nodes: faulted.resilience.dead_nodes.len(),
                reclaimed_w: faulted.resilience.reclaimed.value(),
                reserved_after_w: faulted.resilience.reserved_after.value(),
                reallocated: faulted.resilience.reallocated,
            }
        })
        .collect();

    ResilienceStudy {
        budget_w: budget.value(),
        plan,
        rows,
    }
}

/// Render the study as a text artifact.
pub fn render(study: &ResilienceStudy) -> String {
    let header = [
        "policy",
        "slowdown",
        "draw %budget",
        "dead",
        "reclaimed W",
        "reserved W",
        "realloc",
    ];
    let rows: Vec<Vec<String>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                format!("{:.3}x", r.slowdown()),
                format!("{:.1}%", r.draw_frac * 100.0),
                r.dead_nodes.to_string(),
                format!("{:.0}", r.reclaimed_w),
                format!("{:.0}", r.reserved_after_w),
                if r.reallocated { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    let events: String = study
        .plan
        .events()
        .iter()
        .map(|e| {
            format!(
                "  iter {:>3}: node {:>3} ← {}\n",
                e.at_iteration, e.host, e.kind
            )
        })
        .collect();
    format!(
        "RESILIENCE: 5 POLICIES x 1 FIXED FAULT PLAN (online mode, {} W budget)\n\n\
         fault plan:\n{events}\n{}\n\
         invariants checked: no panics; ledger reservations never exceed the\n\
         system budget after failures; online re-allocation hands the dead\n\
         nodes' budget to the survivors.\n",
        study.budget_w,
        table(&header, &rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_runs_every_policy_without_panicking() {
        let study = run_study(ResilienceParams {
            nodes_per_job: 1,
            iterations: 8,
            budget_per_node_w: 185.0,
            seed: 42,
        });
        assert_eq!(study.rows.len(), 5);
        for row in &study.rows {
            assert!(row.dead_nodes >= 2, "{}: both deaths drained", row.kind);
            assert!(
                row.reserved_after_w <= study.budget_w + 1e-6,
                "{}: ledger within budget",
                row.kind
            );
            assert!(row.reallocated, "{}: online mode re-allocates", row.kind);
            assert!(row.clean_elapsed_s > 0.0 && row.faulted_elapsed_s > 0.0);
        }
    }

    #[test]
    fn fixed_plan_is_deterministic_and_in_range() {
        let a = fixed_plan(18, 40);
        let b = fixed_plan(18, 40);
        assert_eq!(a, b);
        assert!(a.events().iter().all(|e| e.host < 18));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn render_names_every_policy() {
        let study = run_study(ResilienceParams {
            nodes_per_job: 1,
            iterations: 8,
            budget_per_node_w: 185.0,
            seed: 42,
        });
        let text = render(&study);
        for kind in PolicyKind::all() {
            assert!(text.contains(&kind.to_string()), "missing {kind}");
        }
        assert!(text.contains("fault plan:"));
    }
}
