//! # pmstack-experiments — reproduction of the paper's evaluation
//!
//! Everything needed to regenerate the paper's tables and figures against
//! the simulated stack:
//!
//! * [`mixes`] — the six workload mixes of Table II (§V-B).
//! * [`testbed`] — the evaluation environment: the 2000-node variation
//!   screen, k-means node selection (§V-A2, Fig. 6), and job placement.
//! * [`budgets`] — the min/ideal/max system budgets of Table III (§V-C).
//! * [`grid`] — the policy × mix × budget evaluation grid behind Fig. 7
//!   and Fig. 8.
//! * [`facility`] — the facility-scale year simulation behind Fig. 1.
//! * [`campaign`] — the fault-tolerant facility campaign: job lifecycle
//!   with checkpoint/restart, retry/backoff, lease timeouts, and budget
//!   shocks under every policy (`repro facility [--chaos N]`).
//! * [`export`] — CSV export of the evaluation grid.
//! * [`sweep`] — continuous budget sweeps locating policy crossovers.
//! * [`replicates`] — Fig. 8-style jitter-seed replicate sweeps through the
//!   full stack (`repro sweep --replicates N`), the volume workload the
//!   columnar hot loop is benchmarked on.
//! * [`hetero`] — the heterogeneous-fleet scenario: the five policies on
//!   a homogeneous vs. a 3-class fleet with per-(app, class)
//!   characterization, multi-domain (PKG/PP0/DRAM) budget admission, and
//!   within-host domain balancing (`repro hetero`).
//! * [`megafleet`] — the 100k–1M-host scale scenario for the sharded
//!   bank: cold resolve, hierarchical balancing, steady replay, and
//!   one-segment churn, each timed (`repro megafleet --hosts N`).
//! * [`resilience`] — the five policies under one fixed fault plan
//!   (node deaths, telemetry dropout, stuck RAPL): graceful degradation
//!   across the whole stack (`repro faults`).
//! * [`figures`] — generators for Figs. 1–8.
//! * [`tables`] — generators for Tables I–III.
//! * [`cli`] — strict argument parsing for `repro` (unknown flags error).
//!
//! The `repro` binary drives all of it:
//!
//! ```text
//! repro all          # every table and figure
//! repro fig8         # one artifact
//! repro fig8 --fast  # reduced scale for quick checks
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budgets;
pub mod campaign;
pub mod cli;
pub mod export;
pub mod facility;
pub mod figures;
pub mod grid;
pub mod hetero;
pub mod megafleet;
pub mod mixes;
pub mod replicates;
pub mod resilience;
pub mod sweep;
pub mod tables;
pub mod testbed;

pub use budgets::{BudgetLevel, MixBudgets};
pub use grid::{EvaluationGrid, GridCell};
pub use mixes::{MixKind, WorkloadMix};
pub use testbed::Testbed;
