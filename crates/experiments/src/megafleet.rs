//! The megafleet scale scenario (`repro megafleet`).
//!
//! Drives one [`JobPlatform`] at 100k–1M hosts through the four regimes the
//! sharded bank distinguishes, timing each:
//!
//! 1. **full_resolve** — every segment cold: per-host operating-point
//!    resolve plus full columnar stepping.
//! 2. **balance** — the [`HierarchicalBalancerAgent`] live on every
//!    interval, shards aligned with the bank's segments. Its write elision
//!    lets segments settle while the agent still runs.
//! 3. **steady** — no agent: the whole fleet replays from the
//!    steady-state cache at the flat ns/host the bank is built for.
//! 4. **shard_churn** — a control write lands in segment 0 every
//!    interval, so that one segment re-resolves while every other segment
//!    stays on the replay path. The shard counters prove the partial
//!    invalidation: with S segments, the replay fraction must stay at
//!    (S-1)/S, not collapse to zero.
//!
//! The scenario is deterministic (no jitter, seeded manufacturing
//! variation) and needs the observability recorder enabled to report the
//! replay fraction; `repro` turns it on for this artifact.

use pmstack_kernel::KernelConfig;
use pmstack_runtime::{Agent, HierarchicalBalancerAgent, IterationBuffers, JobPlatform};
use pmstack_simhw::{quartz_spec, Node, NodeId, PowerModel, Watts};
use std::time::Instant;

/// Hard ceiling on `--hosts`: 2^20 hosts (~1.3 GB of bank state).
pub const MAX_HOSTS: usize = 1 << 20;

/// Scale knobs of the megafleet scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MegafleetParams {
    /// Fleet size (1 ..= [`MAX_HOSTS`]).
    pub hosts: usize,
    /// Iterations timed with every segment cold.
    pub resolve_iters: usize,
    /// Iterations with the hierarchical balancer live.
    pub balance_iters: usize,
    /// Iterations of full steady-state replay.
    pub steady_iters: usize,
    /// Iterations with a one-host control write per interval.
    pub churn_iters: usize,
    /// Job budget per host, watts. Scarce, so the balancer has real work.
    pub budget_per_host_w: f64,
    /// Override the bank's segment size (None = the bank default). Used
    /// by tests to get many segments out of a small fleet.
    pub segment_hosts: Option<usize>,
}

impl MegafleetParams {
    /// Default scale: the 100k-host point of the ISSUE's target band.
    pub fn default_scale(hosts: usize) -> Self {
        Self {
            hosts,
            resolve_iters: 30,
            balance_iters: 400,
            steady_iters: 200,
            churn_iters: 200,
            budget_per_host_w: 150.0,
            segment_hosts: None,
        }
    }

    /// Reduced iteration counts for quick checks (`--fast`).
    pub fn fast(hosts: usize) -> Self {
        Self {
            hosts,
            resolve_iters: 10,
            balance_iters: 150,
            steady_iters: 60,
            churn_iters: 60,
            budget_per_host_w: 150.0,
            segment_hosts: None,
        }
    }
}

/// Wall-clock of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name (`full_resolve`, `balance`, `steady`, `shard_churn`).
    pub name: &'static str,
    /// Iterations run.
    pub iters: usize,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Nanoseconds per host per iteration.
    pub ns_per_host: f64,
}

/// The full scenario result.
#[derive(Debug, Clone, PartialEq)]
pub struct MegafleetReport {
    /// Fleet size.
    pub hosts: usize,
    /// Bank segments backing the fleet.
    pub segments: usize,
    /// Hosts per segment.
    pub segment_hosts: usize,
    /// One entry per phase, run order.
    pub phases: Vec<PhaseStat>,
    /// Shard invalidations over the churn phase.
    pub churn_invalidated: u64,
    /// Shard replays over the churn phase.
    pub churn_replayed: u64,
    /// Fraction of (segment, iteration) slots the churn phase replayed.
    pub churn_replay_fraction: f64,
    /// Whether steady-state replay was active at the end of the balance
    /// phase (the write-elision fixed point engaged under a live agent).
    pub settled_under_agent: bool,
    /// Total fleet energy at the end, joules (a determinism anchor).
    pub total_energy_j: f64,
}

/// Deterministic manufacturing-variation spread, inside the profile's
/// support, cheap enough for a million hosts.
fn eps_of(i: usize) -> f64 {
    0.92 + 0.012 * ((i * 31) % 16) as f64
}

fn time_phase(name: &'static str, hosts: usize, iters: usize, mut body: impl FnMut()) -> PhaseStat {
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    let wall_secs = start.elapsed().as_secs_f64();
    PhaseStat {
        name,
        iters,
        wall_secs,
        ns_per_host: wall_secs * 1e9 / (iters.max(1) * hosts) as f64,
    }
}

/// Run the scenario.
pub fn run_megafleet(params: &MegafleetParams) -> MegafleetReport {
    assert!(
        (1..=MAX_HOSTS).contains(&params.hosts),
        "hosts out of range"
    );
    let model = PowerModel::new(quartz_spec()).expect("quartz spec is valid");
    let nodes: Vec<Node> = (0..params.hosts)
        .map(|i| Node::new(NodeId(i), &model, eps_of(i)).expect("eps is in range"))
        .collect();
    let config = KernelConfig::balanced_ymm(16.0);
    let mut platform = JobPlatform::new(model, nodes, config);
    if let Some(sh) = params.segment_hosts {
        platform = platform.with_segment_hosts(sh);
    }
    platform.set_fast_forward(true);
    let segments = platform.num_segments();
    let segment_hosts = platform.segment_hosts();
    let mut bufs = IterationBuffers::new();
    let mut phases = Vec::with_capacity(4);

    // Phase 1: cold resolve + full stepping. A uniform limit write before
    // each timed iteration keeps every segment invalid, so this times the
    // worst case the sharding is supposed to make rare.
    let mut flip = 0u64;
    phases.push(time_phase(
        "full_resolve",
        params.hosts,
        params.resolve_iters,
        || {
            flip += 1;
            platform
                .set_uniform_limit(Watts(200.0 + (flip % 2) as f64))
                .expect("limit is in the settable range");
            platform.run_iteration_into(&mut bufs);
        },
    ));

    // Phase 2: the hierarchical balancer, shards aligned with segments.
    let budget = Watts(params.budget_per_host_w * params.hosts as f64);
    let mut agent = HierarchicalBalancerAgent::new(budget).with_shard_hosts(segment_hosts);
    agent.init(&mut platform);
    phases.push(time_phase(
        "balance",
        params.hosts,
        params.balance_iters,
        || {
            platform.run_iteration_into(&mut bufs);
            agent.adjust(&mut platform, bufs.outcome());
        },
    ));
    let settled_under_agent = platform.steady_state_active();

    // A scarce budget can keep the agent nudging targets right up to its
    // last adjustment, leaving the filters a few iterations short of their
    // bitwise fixed point. Give them a bounded, untimed window to settle so
    // the steady row measures the replay path itself, not the tail of the
    // convergence.
    for _ in 0..600 {
        if platform.steady_state_active() {
            break;
        }
        platform.run_iteration_into(&mut bufs);
    }

    // Phase 3: the whole fleet on the steady-state replay path.
    phases.push(time_phase(
        "steady",
        params.hosts,
        params.steady_iters,
        || {
            platform.run_iteration_into(&mut bufs);
        },
    ));

    // Phase 4: one-host churn. Alternating limits on host 0 keep segment 0
    // re-resolving every interval; every other segment must stay on the
    // per-segment replay path, which the shard counters prove.
    let before = pmstack_obs::snapshot();
    let mut flip = 0u64;
    phases.push(time_phase(
        "shard_churn",
        params.hosts,
        params.churn_iters,
        || {
            flip += 1;
            platform
                .set_host_limit(0, Watts(180.0 + (flip % 2) as f64))
                .expect("limit is in the settable range");
            platform.run_iteration_into(&mut bufs);
        },
    ));
    let after = pmstack_obs::snapshot();
    let shard_count = |snap: &pmstack_obs::Snapshot, name: &str| snap.counter(name).unwrap_or(0);
    let churn_invalidated = shard_count(&after, "simhw.bank.shard.invalidated")
        - shard_count(&before, "simhw.bank.shard.invalidated");
    let churn_replayed = shard_count(&after, "simhw.bank.shard.replayed")
        - shard_count(&before, "simhw.bank.shard.replayed");
    let slots = (params.churn_iters * segments) as f64;
    let churn_replay_fraction = if slots > 0.0 {
        churn_replayed as f64 / slots
    } else {
        0.0
    };

    let total_energy_j: f64 = platform.host_energy().iter().map(|e| e.value()).sum();
    MegafleetReport {
        hosts: params.hosts,
        segments,
        segment_hosts,
        phases,
        churn_invalidated,
        churn_replayed,
        churn_replay_fraction,
        settled_under_agent,
        total_energy_j,
    }
}

/// Render the report as a text artifact.
///
/// Deliberately timing-free: every `repro` artifact on stdout is
/// byte-identical across same-seed runs (the verify recipe `cmp`s two
/// invocations). Per-phase wall-clock prints on stderr behind `--time`,
/// and machine form lands in `BENCH_megafleet.json` behind `--out`.
pub fn render(report: &MegafleetReport) -> String {
    use pmstack_analysis::render::table;
    let header = ["phase", "iters", "regime"];
    let regime = |name: &str| match name {
        "full_resolve" => "every segment cold: full resolve + step",
        "balance" => "hierarchical balancer live each interval",
        "steady" => "whole-fleet steady-state replay",
        "shard_churn" => "segment 0 dirtied, rest replaying",
        _ => "",
    };
    let rows: Vec<Vec<String>> = report
        .phases
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.iters.to_string(),
                regime(p.name).to_string(),
            ]
        })
        .collect();
    format!(
        "MEGAFLEET: {} HOSTS ({} segments x {} hosts)\n\n{}\n\
         balance fixed point reached under live agent: {}\n\
         churn: {} shard invalidations, {} shard replays \
         ({:.1}% of segment-iterations on the replay path)\n\
         total fleet energy: {:.3e} J\n\
         (per-phase wall-clock: --time; machine form: --out DIR writes \
         BENCH_megafleet.json)\n",
        report.hosts,
        report.segments,
        report.segment_hosts,
        table(&header, &rows),
        if report.settled_under_agent {
            "yes"
        } else {
            "no"
        },
        report.churn_invalidated,
        report.churn_replayed,
        report.churn_replay_fraction * 100.0,
        report.total_energy_j,
    )
}

/// Serialize the report as the BENCH_megafleet.json document.
pub fn to_bench_json(report: &MegafleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\n  \"benchmark\": \"megafleet\",\n  \"hosts\": {},\n  \
         \"segments\": {},\n  \"segment_hosts\": {},\n  \"phases\": {{",
        report.hosts, report.segments, report.segment_hosts
    );
    for (i, p) in report.phases.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"iters\": {}, \"wall_secs\": {:.6}, \
             \"ns_per_host\": {:.3}}}",
            p.name, p.iters, p.wall_secs, p.ns_per_host
        );
    }
    let _ = write!(
        out,
        "\n  }},\n  \"churn_invalidated\": {},\n  \"churn_replayed\": {},\n  \
         \"churn_replay_fraction\": {:.6},\n  \"settled_under_agent\": {}\n}}\n",
        report.churn_invalidated,
        report.churn_replayed,
        report.churn_replay_fraction,
        report.settled_under_agent
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MegafleetParams {
        MegafleetParams {
            hosts: 24,
            resolve_iters: 4,
            balance_iters: 250,
            steady_iters: 20,
            churn_iters: 20,
            budget_per_host_w: 150.0,
            segment_hosts: None,
        }
    }

    #[test]
    fn runs_all_phases_and_reports_partial_invalidation() {
        pmstack_obs::enable();
        let report = run_megafleet(&tiny());
        assert_eq!(report.hosts, 24);
        assert_eq!(report.phases.len(), 4);
        assert!(report.phases.iter().all(|p| p.wall_secs >= 0.0));
        // 24 hosts fit one default segment: churn re-steps it every
        // interval, so nothing replays — the fraction is honest, not
        // vacuous.
        assert_eq!(report.segments, 1);
        assert_eq!(report.churn_replay_fraction, 0.0);
        assert!(report.settled_under_agent, "balancer reached fixed point");
        assert!(report.total_energy_j > 0.0);
    }

    #[test]
    fn churn_leaves_most_segments_on_the_replay_path() {
        pmstack_obs::enable();
        let mut params = tiny();
        params.segment_hosts = Some(2); // 12 segments of 2 hosts
        let report = run_megafleet(&params);
        assert_eq!(report.segments, 12);
        // Only segment 0 is dirtied each churn interval: the other 11
        // must replay, i.e. >= 90% of segment-iterations.
        assert!(
            report.churn_replay_fraction >= 0.9,
            "replay fraction {} below the 90% floor",
            report.churn_replay_fraction
        );
        assert!(report.churn_invalidated > 0);
        assert!(report.churn_replayed > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        pmstack_obs::enable();
        let a = run_megafleet(&tiny());
        let b = run_megafleet(&tiny());
        assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
        assert_eq!(a.churn_replay_fraction, b.churn_replay_fraction);
    }

    #[test]
    fn render_and_json_name_every_phase() {
        pmstack_obs::enable();
        let report = run_megafleet(&tiny());
        let text = render(&report);
        let json = to_bench_json(&report);
        for name in ["full_resolve", "balance", "steady", "shard_churn"] {
            assert!(text.contains(name), "render missing {name}");
            assert!(json.contains(name), "json missing {name}");
        }
        assert!(json.contains("\"hosts\": 24"));
    }

    #[test]
    fn eps_stays_inside_the_variation_support() {
        for i in [0usize, 1, 15, 16, 1023, 1024, MAX_HOSTS - 1] {
            let e = eps_of(i);
            assert!((0.85..=1.18).contains(&e), "eps {e} out of range at {i}");
        }
    }
}
