//! Strict argument parsing for the `repro` binary.
//!
//! Unknown flags are errors with a usage hint, not silently ignored — a
//! typo like `--replicate 20` must fail loudly instead of quietly running
//! the default artifact without replicates.

use std::path::PathBuf;

/// Every artifact `repro` can produce, in usage order.
pub const ARTIFACTS: &[&str] = &[
    "all",
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "grid",
    "sweep",
    "faults",
    "facility",
    "hetero",
    "megafleet",
    "serve",
    "loadgen",
];

/// Usage text printed alongside parse errors.
pub const USAGE: &str = "usage: repro <artifact> [--fast] [--faults] [--time] [--replicates N] \
     [--chaos LEVEL] [--days N] [--hosts N] [--out DIR] [--metrics-out PATH]\n\
     [--port P] [--addr HOST:PORT] [--requests N] [--concurrency C]\n\
     artifacts: all table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 grid sweep \
     faults facility hetero megafleet serve loadgen\n\
     (--faults is shorthand for the `faults` artifact: the five policies\n\
      under one fixed fault plan, online mode;\n\
      --replicates N turns `sweep` into the Fig. 8-style jitter-seed\n\
      replicate sweep: N jittered + 1 clean full-stack run per policy;\n\
      --chaos LEVEL (0-3, default 2) sets the `facility` campaign's failure\n\
      intensity and --days N (>= 1) its length: the fault-tolerant job\n\
      lifecycle — checkpoint/restart, retry backoff, lease timeouts, budget\n\
      shocks — under every policy;\n\
      `hetero` compares the five policies on a homogeneous vs. a 3-class\n\
      fleet with per-(app, class) characterization and PKG/PP0/DRAM\n\
      domain budgets (per-tick oversubscription check);\n\
      --hosts N (1-1048576, default 100000) sets the `megafleet` fleet size:\n\
      the sharded-bank scale scenario — cold resolve, hierarchical\n\
      balancing, steady replay, one-segment churn — timed per phase\n\
      (megafleet runs only when named explicitly, never under `all`);\n\
      `serve` starts the pmstackd daemon on --port (default 7070) with\n\
      --hosts simulated hosts (default 100000) and runs until killed;\n\
      `loadgen` drives POST /submit at a daemon: --addr (default\n\
      127.0.0.1:7070), --requests N (default 5000), --concurrency C\n\
      (default 4), and with --out writes BENCH_serve.json;\n\
      --time prints the grid's per-phase wall-clock breakdown and, with\n\
      --out, writes BENCH_grid.json / BENCH_sweep.json;\n\
      --metrics-out PATH enables the observability recorder and writes the\n\
      metrics snapshot as JSON to PATH plus Prometheus text to PATH.prom)";

/// A parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cli {
    /// The artifact to produce (one of [`ARTIFACTS`]).
    pub artifact: String,
    /// `--fast`: reduced scale for quick checks.
    pub fast: bool,
    /// `--time`: print wall-clock breakdowns, write BENCH json with --out.
    pub timed: bool,
    /// `--out DIR`: also write per-artifact text files.
    pub out_dir: Option<PathBuf>,
    /// `--replicates N`: jittered replicates per policy for `sweep`.
    pub replicates: Option<usize>,
    /// `--metrics-out PATH`: enable the recorder, write snapshot here.
    pub metrics_out: Option<PathBuf>,
    /// `--chaos LEVEL`: failure intensity for the `facility` campaign.
    pub chaos: Option<u32>,
    /// `--days N`: length of the `facility` campaign.
    pub days: Option<u64>,
    /// `--hosts N`: fleet size for the `megafleet` scenario or the served
    /// fleet of `serve`.
    pub hosts: Option<usize>,
    /// `--port P`: TCP port for `serve`.
    pub port: Option<u16>,
    /// `--addr HOST:PORT`: daemon address for `loadgen`.
    pub addr: Option<String>,
    /// `--requests N`: total requests for `loadgen`.
    pub requests: Option<usize>,
    /// `--concurrency C`: concurrent connections for `loadgen`.
    pub concurrency: Option<usize>,
}

/// Parse `args` (without the program name). Unknown flags, missing flag
/// values, unknown artifacts, and multiple artifacts are all errors; the
/// caller prints the message plus [`USAGE`] and exits nonzero.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut faults_flag = false;
    let mut positionals: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--fast" => cli.fast = true,
            "--time" => cli.timed = true,
            "--faults" => faults_flag = true,
            "--out" | "--replicates" | "--metrics-out" | "--chaos" | "--days" | "--hosts"
            | "--port" | "--addr" | "--requests" | "--concurrency" => {
                let value = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("flag `{arg}` requires a value"))?;
                match arg {
                    "--out" => cli.out_dir = Some(PathBuf::from(value)),
                    "--metrics-out" => cli.metrics_out = Some(PathBuf::from(value)),
                    "--chaos" => {
                        let level: u32 = value.parse().map_err(|_| {
                            format!("flag `--chaos` expects a level 0-3, got `{value}`")
                        })?;
                        if level > 3 {
                            return Err(format!(
                                "flag `--chaos` expects a level 0-3, got `{value}`"
                            ));
                        }
                        cli.chaos = Some(level);
                    }
                    "--hosts" => {
                        let hosts: usize = value.parse().map_err(|_| {
                            format!("flag `--hosts` expects a host count 1-1048576, got `{value}`")
                        })?;
                        if !(1..=1_048_576).contains(&hosts) {
                            return Err(format!(
                                "flag `--hosts` expects a host count 1-1048576, got `{value}`"
                            ));
                        }
                        cli.hosts = Some(hosts);
                    }
                    "--port" => {
                        cli.port = Some(value.parse().map_err(|_| {
                            format!("flag `--port` expects a port 0-65535, got `{value}`")
                        })?);
                    }
                    "--addr" => {
                        if !value.contains(':') {
                            return Err(format!("flag `--addr` expects HOST:PORT, got `{value}`"));
                        }
                        cli.addr = Some(value.clone());
                    }
                    "--requests" => {
                        let requests: usize = value.parse().map_err(|_| {
                            format!("flag `--requests` expects a count >= 1, got `{value}`")
                        })?;
                        if requests == 0 {
                            return Err(format!(
                                "flag `--requests` expects a count >= 1, got `{value}`"
                            ));
                        }
                        cli.requests = Some(requests);
                    }
                    "--concurrency" => {
                        let concurrency: usize = value.parse().map_err(|_| {
                            format!("flag `--concurrency` expects a count 1-1024, got `{value}`")
                        })?;
                        if !(1..=1024).contains(&concurrency) {
                            return Err(format!(
                                "flag `--concurrency` expects a count 1-1024, got `{value}`"
                            ));
                        }
                        cli.concurrency = Some(concurrency);
                    }
                    "--days" => {
                        let days: u64 = value.parse().map_err(|_| {
                            format!("flag `--days` expects a day count >= 1, got `{value}`")
                        })?;
                        if days == 0 {
                            return Err(format!(
                                "flag `--days` expects a day count >= 1, got `{value}`"
                            ));
                        }
                        cli.days = Some(days);
                    }
                    _ => {
                        cli.replicates = Some(value.parse().map_err(|_| {
                            format!("flag `--replicates` expects a count, got `{value}`")
                        })?);
                    }
                }
                i += 1;
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag `{arg}`")),
            _ => positionals.push(arg),
        }
        i += 1;
    }
    cli.artifact = match positionals.as_slice() {
        [] if faults_flag => "faults".to_string(),
        [] => "all".to_string(),
        [one] if ARTIFACTS.contains(one) => (*one).to_string(),
        [one] => return Err(format!("unknown artifact `{one}`")),
        many => return Err(format!("expected one artifact, got: {}", many.join(" "))),
    };
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_to_all() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.artifact, "all");
        assert!(!cli.fast && !cli.timed);
        assert_eq!(cli.out_dir, None);
    }

    #[test]
    fn parses_every_flag() {
        let cli = parse(&args(&[
            "sweep",
            "--fast",
            "--time",
            "--replicates",
            "20",
            "--out",
            "results",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(cli.artifact, "sweep");
        assert!(cli.fast && cli.timed);
        assert_eq!(cli.replicates, Some(20));
        assert_eq!(cli.out_dir, Some(PathBuf::from("results")));
        assert_eq!(cli.metrics_out, Some(PathBuf::from("m.json")));
    }

    #[test]
    fn faults_flag_selects_faults_artifact() {
        assert_eq!(parse(&args(&["--faults"])).unwrap().artifact, "faults");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(&args(&["grid", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "{err}");
        // The historical silent-ignore bug: a typo'd flag must not parse.
        assert!(parse(&args(&["--replicate", "20"])).is_err());
    }

    #[test]
    fn value_flags_require_values() {
        assert!(parse(&args(&["--out"])).unwrap_err().contains("--out"));
        assert!(parse(&args(&["--replicates", "--fast"])).is_err());
        assert!(parse(&args(&["--replicates", "many"])).is_err());
        assert!(parse(&args(&["--metrics-out"])).is_err());
    }

    #[test]
    fn artifact_must_be_known_and_singular() {
        assert!(parse(&args(&["fig9"])).unwrap_err().contains("fig9"));
        assert!(parse(&args(&["grid", "sweep"])).is_err());
    }

    #[test]
    fn facility_takes_chaos_and_days() {
        let cli = parse(&args(&["facility", "--chaos", "2", "--days", "3"])).unwrap();
        assert_eq!(cli.artifact, "facility");
        assert_eq!(cli.chaos, Some(2));
        assert_eq!(cli.days, Some(3));
    }

    #[test]
    fn hetero_is_a_known_artifact() {
        let cli = parse(&args(&["hetero", "--fast"])).unwrap();
        assert_eq!(cli.artifact, "hetero");
        assert!(cli.fast);
    }

    #[test]
    fn megafleet_takes_hosts() {
        let cli = parse(&args(&["megafleet", "--hosts", "100000"])).unwrap();
        assert_eq!(cli.artifact, "megafleet");
        assert_eq!(cli.hosts, Some(100_000));
        // Unset stays None; the binary applies the 100k default.
        assert_eq!(parse(&args(&["megafleet"])).unwrap().hosts, None);
    }

    #[test]
    fn hosts_is_validated_strictly() {
        // Both ends of the range are inclusive…
        assert_eq!(
            parse(&args(&["megafleet", "--hosts", "1"])).unwrap().hosts,
            Some(1)
        );
        assert_eq!(
            parse(&args(&["megafleet", "--hosts", "1048576"]))
                .unwrap()
                .hosts,
            Some(1 << 20)
        );
        // …and anything outside or unparsable is a loud error.
        assert!(parse(&args(&["megafleet", "--hosts", "0"]))
            .unwrap_err()
            .contains("1-1048576"));
        assert!(parse(&args(&["megafleet", "--hosts", "1048577"]))
            .unwrap_err()
            .contains("1-1048576"));
        assert!(parse(&args(&["megafleet", "--hosts", "-5"])).is_err());
        assert!(parse(&args(&["megafleet", "--hosts", "many"])).is_err());
        assert!(parse(&args(&["megafleet", "--hosts"])).is_err());
    }

    #[test]
    fn serve_takes_port_and_hosts() {
        let cli = parse(&args(&["serve", "--port", "7171", "--hosts", "100000"])).unwrap();
        assert_eq!(cli.artifact, "serve");
        assert_eq!(cli.port, Some(7171));
        assert_eq!(cli.hosts, Some(100_000));
        // Unset stays None; the binary applies the defaults.
        let cli = parse(&args(&["serve"])).unwrap();
        assert_eq!(cli.port, None);
        assert_eq!(cli.hosts, None);
    }

    #[test]
    fn loadgen_takes_addr_requests_and_concurrency() {
        let cli = parse(&args(&[
            "loadgen",
            "--addr",
            "127.0.0.1:7171",
            "--requests",
            "5000",
            "--concurrency",
            "6",
        ]))
        .unwrap();
        assert_eq!(cli.artifact, "loadgen");
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(cli.requests, Some(5000));
        assert_eq!(cli.concurrency, Some(6));
    }

    #[test]
    fn serve_and_loadgen_flags_are_validated() {
        assert!(parse(&args(&["serve", "--port", "65536"]))
            .unwrap_err()
            .contains("0-65535"));
        assert!(parse(&args(&["serve", "--port", "http"])).is_err());
        assert!(parse(&args(&["serve", "--port"])).is_err());
        assert!(parse(&args(&["loadgen", "--addr", "no-port-here"]))
            .unwrap_err()
            .contains("HOST:PORT"));
        assert!(parse(&args(&["loadgen", "--requests", "0"]))
            .unwrap_err()
            .contains(">= 1"));
        assert!(parse(&args(&["loadgen", "--concurrency", "0"]))
            .unwrap_err()
            .contains("1-1024"));
        assert!(parse(&args(&["loadgen", "--concurrency", "1025"]))
            .unwrap_err()
            .contains("1-1024"));
    }

    #[test]
    fn chaos_and_days_are_validated() {
        assert!(parse(&args(&["facility", "--chaos", "4"]))
            .unwrap_err()
            .contains("0-3"));
        assert!(parse(&args(&["facility", "--chaos", "soft"])).is_err());
        assert!(parse(&args(&["facility", "--chaos"])).is_err());
        assert!(parse(&args(&["facility", "--days", "0"]))
            .unwrap_err()
            .contains(">= 1"));
        assert!(parse(&args(&["facility", "--days", "-2"])).is_err());
    }
}
