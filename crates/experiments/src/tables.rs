//! Generators for Tables I–III.

use crate::budgets::MixBudgets;
use crate::mixes::{self, MixKind};
use crate::testbed::Testbed;
use pmstack_analysis::render::table;
use pmstack_core::JobChar;
use pmstack_simhw::quartz_spec;

/// Table I: the Quartz system properties.
pub fn table1() -> String {
    let spec = quartz_spec();
    let rows = vec![
        vec!["CPU".to_string(), spec.name.clone()],
        vec![
            "Cores Per Node".to_string(),
            (spec.sockets_per_node * spec.cores_per_socket).to_string(),
        ],
        vec![
            "Cores Used Per Node".to_string(),
            spec.cores_used_per_node.to_string(),
        ],
        vec![
            "Thermal Design Power".to_string(),
            format!("{:.0} W per CPU socket", spec.tdp_per_socket.value()),
        ],
        vec![
            "Minimum RAPL Limit".to_string(),
            format!("{:.0} W per CPU socket", spec.min_rapl_per_socket.value()),
        ],
        vec![
            "Base Frequency".to_string(),
            format!("{:.1} GHz", spec.f_base.ghz()),
        ],
        vec![
            "All-core Turbo".to_string(),
            format!("{:.1} GHz", spec.f_turbo.ghz()),
        ],
        vec![
            "DRAM Bandwidth (node)".to_string(),
            format!("{:.0} GB/s", spec.dram_bw_bytes_per_s / 1e9),
        ],
    ];
    format!(
        "TABLE I: QUARTZ SYSTEM PROPERTIES\n\n{}",
        table(&["Property", "Value"], &rows)
    )
}

/// Table II: the workloads in each workload mix.
pub fn table2() -> String {
    let mut out = String::from("TABLE II: WORKLOADS IN EACH WORKLOAD MIX\n\n");
    for kind in MixKind::all() {
        let mix = mixes::build(kind);
        out.push_str(&format!("{kind} ({} nodes):\n", mix.total_nodes()));
        for (_, config, nodes) in &mix.jobs {
            out.push_str(&format!("  {:>4} nodes  {}\n", nodes, config.label()));
        }
        out.push('\n');
    }
    out
}

/// Table III: the min/ideal/max power budgets for each mix, computed from
/// the testbed's characterization.
pub fn table3(testbed: &Testbed, nodes_per_job: usize) -> String {
    let mut rows = Vec::new();
    let mut total_tdp_kw = 0.0;
    for kind in MixKind::all() {
        let mix = mixes::build_scaled(kind, nodes_per_job);
        let setups = testbed.place(&mix);
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, testbed.model(), &s.host_eps))
            .collect();
        let b = MixBudgets::from_characterization(&chars);
        total_tdp_kw =
            testbed.model().spec().tdp_per_node().value() * mix.total_nodes() as f64 / 1e3;
        rows.push(vec![
            kind.to_string(),
            format!("{:.0} kW", b.min.kw()),
            format!("{:.0} kW", b.ideal.kw()),
            format!("{:.0} kW", b.max.kw()),
        ]);
    }
    format!(
        "TABLE III: POWER BUDGETS FOR EACH WORKLOAD MIX\n\n{}\n*TDP of all CPUs is {:.0} kW\n",
        table(&["Workload Mix", "min", "ideal", "max"], &rows),
        total_tdp_kw
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_paper_constants() {
        let t = table1();
        assert!(t.contains("120 W per CPU socket"));
        assert!(t.contains("68 W per CPU socket"));
        assert!(t.contains("2.1 GHz"));
    }

    #[test]
    fn table2_lists_all_mixes() {
        let t = table2();
        for kind in MixKind::all() {
            assert!(t.contains(&kind.to_string()), "missing {kind}");
        }
        assert!(t.contains("900 nodes"));
    }

    #[test]
    fn table3_orders_budgets() {
        let tb = Testbed::new(400, 7);
        let t = table3(&tb, 10);
        assert!(t.contains("min"));
        assert!(t.contains("TDP of all CPUs"));
        // One row per mix plus the TDP footnote.
        assert_eq!(t.lines().filter(|l| l.contains("kW")).count(), 7);
    }
}
