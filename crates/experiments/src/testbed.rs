//! The evaluation environment (§V-A).
//!
//! Reproduces the paper's node-selection methodology: screen a 2000-node
//! cluster for hardware variation by measuring each node's achieved
//! frequency under a 70 W/socket limit with the most power-hungry workload,
//! k-means the frequencies into three groups (Fig. 6), and run the
//! experiments on the medium-frequency cluster.

use crate::mixes::WorkloadMix;
use pmstack_analysis::kmeans::{kmeans_1d, KMeansResult};
use pmstack_core::JobSetup;
use pmstack_kernel::{KernelConfig, KernelLoad};
use pmstack_simhw::{quartz, quartz_spec, Cluster, PowerModel, VariationProfile, Watts};

/// The screened evaluation environment.
pub struct Testbed {
    model: PowerModel,
    /// Achieved frequency (GHz) of every screened node, index = node id.
    pub screen_freqs_ghz: Vec<f64>,
    /// The k-means partition of the screen frequencies.
    pub clusters: KMeansResult,
    /// Efficiency factors of the nodes selected for experiments
    /// (the medium/largest frequency cluster).
    pub selected_eps: Vec<f64>,
}

impl Testbed {
    /// Screen `screen_nodes` nodes (paper: 2000) using the hungriest
    /// heat-map workload under the Fig. 6 70 W/socket limit and select the
    /// largest k-means cluster.
    pub fn new(screen_nodes: usize, seed: u64) -> Self {
        let cluster = Cluster::builder(quartz_spec())
            .nodes(screen_nodes)
            .variation(VariationProfile::quartz())
            .seed(seed)
            .build()
            .expect("screen cluster builds");
        let model = cluster.model().clone();

        // The most power-hungry configuration: near-ridge balanced ymm.
        let load = KernelLoad::new(KernelConfig::balanced_ymm(8.0), model.spec());
        let cap = Watts(quartz::VARIATION_SCREEN_CAP_W * 2.0);
        let screen_freqs_ghz: Vec<f64> = cluster
            .nodes()
            .iter()
            .map(|n| load.achieved_frequency(&model, n.eps(), cap).ghz())
            .collect();

        let clusters = kmeans_1d(&screen_freqs_ghz, 3);
        let medium = clusters.largest_cluster();
        let selected_eps: Vec<f64> = clusters
            .members(medium)
            .into_iter()
            .map(|i| cluster.nodes()[i].eps())
            .collect();

        Self {
            model,
            screen_freqs_ghz,
            clusters,
            selected_eps,
        }
    }

    /// The paper-scale testbed: 2000 screened nodes, seed 6 (selects a
    /// 919-node medium cluster, matching Fig. 6's 918 of 2000).
    pub fn paper_scale() -> Self {
        Self::new(quartz::VARIATION_SCREEN_NODES, 6)
    }

    /// The machine/power model shared by all nodes.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Number of selectable nodes.
    pub fn capacity(&self) -> usize {
        self.selected_eps.len()
    }

    /// Place a mix's jobs on the selected nodes, first-fit in mix order.
    ///
    /// # Panics
    /// If the mix needs more nodes than the selected cluster provides.
    pub fn place(&self, mix: &WorkloadMix) -> Vec<JobSetup> {
        assert!(
            mix.total_nodes() <= self.capacity(),
            "mix needs {} nodes; testbed has {}",
            mix.total_nodes(),
            self.capacity()
        );
        let mut next = 0usize;
        mix.jobs
            .iter()
            .map(|(_, config, n)| {
                let eps = self.selected_eps[next..next + n].to_vec();
                next += n;
                JobSetup {
                    config: *config,
                    host_eps: eps,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::{build_scaled, MixKind};

    #[test]
    fn screen_produces_three_frequency_groups() {
        let tb = Testbed::new(600, 7);
        assert_eq!(tb.clusters.sizes.len(), 3);
        assert!(tb.clusters.sizes.iter().all(|&s| s > 30));
        // Centroids are distinct and ordered.
        let c = &tb.clusters.centroids;
        assert!(c[0] < c[1] && c[1] < c[2]);
    }

    #[test]
    fn medium_cluster_is_selected() {
        let tb = Testbed::new(600, 7);
        let medium = tb.clusters.largest_cluster();
        assert_eq!(tb.capacity(), tb.clusters.sizes[medium]);
        // Medium-cluster nodes have mid-range efficiency: spread is far
        // narrower than the full tri-modal profile.
        let min = tb
            .selected_eps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = tb
            .selected_eps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min < 0.09, "selected spread {}", max - min);
    }

    #[test]
    fn paper_scale_selects_enough_nodes_for_a_mix() {
        let tb = Testbed::paper_scale();
        // Fig. 6's medium cluster is 918 of 2000; ±60 tolerance for seed.
        assert!(
            (850..=990).contains(&tb.capacity()),
            "selected {}",
            tb.capacity()
        );
        assert!(tb.capacity() >= 900, "need 900 nodes for a mix");
    }

    #[test]
    fn placement_covers_all_jobs_without_overlap() {
        let tb = Testbed::new(600, 7);
        let mix = build_scaled(MixKind::LowPower, 10);
        let setups = tb.place(&mix);
        assert_eq!(setups.len(), 9);
        let total: usize = setups.iter().map(|s| s.host_eps.len()).sum();
        assert_eq!(total, 90);
    }

    #[test]
    #[should_panic(expected = "mix needs")]
    fn oversized_mix_panics() {
        let tb = Testbed::new(60, 7);
        let mix = build_scaled(MixKind::HighPower, 100);
        tb.place(&mix);
    }
}
