//! The replicate sweep (`repro sweep --replicates N`).
//!
//! The paper's Fig. 8 error bars come from *replicated* full-stack runs:
//! the same mix under the same policy, repeated across jitter seeds, each
//! replicate a complete 100-iteration coordinator run through the RAPL
//! simulation. This module reproduces that methodology at paper scale
//! (9 jobs × 100 nodes) and is the volume workload the columnar hot loop
//! is benchmarked on: one sweep at the default scale steps ~10⁷ node
//! iterations through `JobPlatform::run_iteration_into`.
//!
//! Each policy runs one *clean* replicate (`jitter_sigma = 0`, which the
//! steady-state fast-forward path accelerates once enforcement settles)
//! plus `replicates` jittered ones whose spread yields the error bars.

use crate::mixes::{build_scaled, MixKind};
use pmstack_analysis::render::table;
use pmstack_core::policies::by_kind;
use pmstack_core::{Coordinator, CoordinatorMode, MixRun, PolicyKind};
use pmstack_simhw::{quartz_spec, Cluster, VariationProfile, Watts};

/// Scale knobs of the replicate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicateParams {
    /// Nodes per job of the scaled mix (9 jobs).
    pub nodes_per_job: usize,
    /// Iterations per job per replicate.
    pub iterations: usize,
    /// Number of jittered replicates per policy (one clean run is added).
    pub replicates: usize,
    /// Per-iteration multiplicative compute-time jitter σ.
    pub jitter_sigma: f64,
    /// System budget per node, watts.
    pub budget_per_node_w: f64,
    /// Cluster variation seed; jitter seeds derive from it per replicate.
    pub seed: u64,
}

impl ReplicateParams {
    /// Paper scale: 9 jobs × 100 nodes, 100 iterations per replicate.
    pub fn default_scale(replicates: usize) -> Self {
        Self {
            nodes_per_job: 100,
            iterations: 100,
            replicates,
            jitter_sigma: 0.01,
            budget_per_node_w: 185.0,
            seed: 42,
        }
    }

    /// Reduced scale for quick checks (`--fast`).
    pub fn fast(replicates: usize) -> Self {
        Self {
            nodes_per_job: 4,
            iterations: 24,
            replicates,
            jitter_sigma: 0.01,
            budget_per_node_w: 185.0,
            seed: 42,
        }
    }
}

/// One policy's replicate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReplicates {
    /// The policy.
    pub kind: PolicyKind,
    /// Mean job elapsed time of the clean (σ = 0) replicate, seconds.
    pub clean_elapsed_s: f64,
    /// Mean over the jittered replicates of the mean job elapsed time.
    pub mean_elapsed_s: f64,
    /// Half-width of the 95 % confidence interval on the mean, seconds
    /// (zero when fewer than two jittered replicates ran).
    pub ci95_s: f64,
    /// Mean total mix energy over the jittered replicates, joules.
    pub mean_energy_j: f64,
}

/// The five-policy replicate sweep over one mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicateSweep {
    /// The mix every policy ran.
    pub mix: MixKind,
    /// The scale it ran at.
    pub params: ReplicateParams,
    /// The system budget, watts.
    pub budget_w: f64,
    /// One row per policy, paper order.
    pub rows: Vec<PolicyReplicates>,
    /// Wall-clock of the whole sweep, seconds.
    pub wall_secs: f64,
    /// Total node iterations stepped (runs × nodes × iterations).
    pub node_iterations: u64,
}

impl ReplicateSweep {
    /// Node iterations stepped per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.node_iterations as f64 / self.wall_secs.max(1e-12)
    }
}

/// Run the sweep: for each §III policy, one clean replicate plus
/// `params.replicates` jittered ones, all through the full stack
/// (emulated mode, the paper's methodology).
pub fn run_sweep(mix: MixKind, params: ReplicateParams) -> ReplicateSweep {
    let workload = build_scaled(mix, params.nodes_per_job);
    let total = workload.total_nodes();
    let cluster = Cluster::builder(quartz_spec())
        .nodes(total)
        .variation(VariationProfile::quartz())
        .seed(params.seed)
        .build()
        .expect("sweep cluster builds");
    let budget = Watts(params.budget_per_node_w * total as f64);

    // Flatten the 5 policies x (1 clean + N jittered) grid into one run
    // list and fan it out over the work-stealing pool. Each run is fully
    // determined by its (policy, jitter seed) pair, so results are
    // order-independent and the aggregation below stays deterministic.
    let run_list: Vec<(PolicyKind, Option<u64>)> = PolicyKind::all()
        .into_iter()
        .flat_map(|kind| {
            std::iter::once((kind, None)).chain(
                (0..params.replicates)
                    .map(move |r| (kind, Some(params.seed.wrapping_add(1 + r as u64)))),
            )
        })
        .collect();
    let runs_done = run_list.len() as u64;

    let run = |_: usize, &(policy, jitter_seed): &(PolicyKind, Option<u64>)| -> MixRun {
        let _span = pmstack_obs::span!("sweep.run.secs");
        let mut coord = Coordinator::new(&cluster);
        if let Some(seed) = jitter_seed {
            coord = coord.with_jitter(params.jitter_sigma, seed);
        }
        coord.run_mix(
            &workload.jobs,
            by_kind(policy).as_ref(),
            budget,
            params.iterations,
            CoordinatorMode::Emulated,
        )
    };

    // Execution order: clean runs first. The pool block-distributes, so
    // on the forced 2-worker pool below one queue starts with the cheap
    // fast-forwarded clean runs and the other with jittered full runs —
    // the cheap side drains first and exercises the steal path.
    let mut order: Vec<usize> = (0..run_list.len()).collect();
    order.sort_by_key(|&i| run_list[i].1.is_some());

    // With >= 2 hardware threads every run goes through the pool. A
    // single-hardware-thread host pays a ~15 % cache-interference tax for
    // time-slicing two workers through the whole sweep, so there only a
    // head slice runs under a forced 2-worker pool — enough to keep the
    // pool and steal counters live (CI's metrics job asserts them) at a
    // bounded (~1-2 %) cost — and the tail runs inline.
    let start = std::time::Instant::now();
    let head_len = if pmstack_exec::workers() > 1 {
        order.len()
    } else {
        order.len().min(6)
    };
    let (head, tail) = order.split_at(head_len);
    let head_results =
        pmstack_exec::par_map_indexed_min_workers(head, 2, |_, &i| run(i, &run_list[i]));
    let mut slots: Vec<Option<MixRun>> = (0..run_list.len()).map(|_| None).collect();
    for (&i, r) in head.iter().zip(head_results) {
        slots[i] = Some(r);
    }
    for &i in tail {
        slots[i] = Some(run(i, &run_list[i]));
    }
    let results: Vec<MixRun> = slots
        .into_iter()
        .map(|r| r.expect("every run executed"))
        .collect();

    let per_policy = params.replicates + 1; // clean run first, then jittered
                                            // The per-policy reductions are independent; fan them out as well.
                                            // Their cost (a few means over <= replicates floats) is far below a
                                            // worker wakeup, so on the forced single-core pool whichever worker
                                            // wakes first drains its queue and steals the other's — this is what
                                            // keeps `exec.tasks.stolen` live on hosts with no real parallelism.
    let policies: Vec<PolicyKind> = PolicyKind::all().into_iter().collect();
    let rows: Vec<PolicyReplicates> =
        pmstack_exec::par_map_indexed_min_workers(&policies, 2, |p, &kind| {
            let clean = &results[p * per_policy];
            let jittered = &results[p * per_policy + 1..(p + 1) * per_policy];
            let elapsed: Vec<f64> = jittered.iter().map(MixRun::mean_elapsed).collect();
            let energy: Vec<f64> = jittered.iter().map(MixRun::total_energy).collect();
            let mean = if elapsed.is_empty() {
                clean.mean_elapsed()
            } else {
                elapsed.iter().sum::<f64>() / elapsed.len() as f64
            };
            let ci95 = if elapsed.len() >= 2 {
                let var = elapsed.iter().map(|t| (t - mean).powi(2)).sum::<f64>()
                    / (elapsed.len() - 1) as f64;
                1.96 * (var / elapsed.len() as f64).sqrt()
            } else {
                0.0
            };
            let mean_energy = if energy.is_empty() {
                clean.total_energy()
            } else {
                energy.iter().sum::<f64>() / energy.len() as f64
            };
            PolicyReplicates {
                kind,
                clean_elapsed_s: clean.mean_elapsed(),
                mean_elapsed_s: mean,
                ci95_s: ci95,
                mean_energy_j: mean_energy,
            }
        });
    let wall_secs = start.elapsed().as_secs_f64();
    let node_iterations = runs_done * total as u64 * params.iterations as u64;

    ReplicateSweep {
        mix,
        params,
        budget_w: budget.value(),
        rows,
        wall_secs,
        node_iterations,
    }
}

/// Render the sweep as a text artifact.
pub fn render(sweep: &ReplicateSweep) -> String {
    let header = [
        "policy",
        "clean s",
        "mean s",
        "ci95 s",
        "energy MJ",
        "vs static",
    ];
    let base = sweep
        .rows
        .iter()
        .find(|r| r.kind == PolicyKind::StaticCaps)
        .map_or(f64::NAN, |r| r.mean_elapsed_s);
    let rows: Vec<Vec<String>> = sweep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                format!("{:.3}", r.clean_elapsed_s),
                format!("{:.3}", r.mean_elapsed_s),
                format!("±{:.3}", r.ci95_s),
                format!("{:.3}", r.mean_energy_j / 1e6),
                format!("{:+.1}%", (r.mean_elapsed_s / base - 1.0) * 100.0),
            ]
        })
        .collect();
    format!(
        "REPLICATE SWEEP: 5 POLICIES x ({} jittered + 1 clean) FULL-STACK RUNS\n\
         mix {}, 9 jobs x {} nodes, {} iterations, sigma {}, {} W budget\n\n{}\n\
         wall-clock {:.3} s for {} node iterations ({:.2e} node-iters/s)\n",
        sweep.params.replicates,
        sweep.mix,
        sweep.params.nodes_per_job,
        sweep.params.iterations,
        sweep.params.jitter_sigma,
        sweep.budget_w,
        table(&header, &rows),
        sweep.wall_secs,
        sweep.node_iterations,
        sweep.throughput(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReplicateParams {
        ReplicateParams {
            nodes_per_job: 1,
            iterations: 8,
            replicates: 2,
            jitter_sigma: 0.01,
            budget_per_node_w: 185.0,
            seed: 42,
        }
    }

    #[test]
    fn sweep_covers_every_policy() {
        let sweep = run_sweep(MixKind::WastefulPower, tiny());
        assert_eq!(sweep.rows.len(), 5);
        // 5 policies x (1 clean + 2 jittered) x 9 nodes x 8 iterations.
        assert_eq!(sweep.node_iterations, 5 * 3 * 9 * 8);
        for row in &sweep.rows {
            assert!(row.clean_elapsed_s > 0.0);
            assert!(row.mean_elapsed_s > 0.0);
            assert!(row.ci95_s >= 0.0);
            assert!(row.mean_energy_j > 0.0);
        }
    }

    #[test]
    fn sweep_statistics_are_deterministic() {
        let a = run_sweep(MixKind::WastefulPower, tiny());
        let b = run_sweep(MixKind::WastefulPower, tiny());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.mean_elapsed_s.to_bits(), y.mean_elapsed_s.to_bits());
            assert_eq!(x.clean_elapsed_s.to_bits(), y.clean_elapsed_s.to_bits());
            assert_eq!(x.ci95_s.to_bits(), y.ci95_s.to_bits());
        }
    }

    #[test]
    fn render_reports_scale_and_policies() {
        let sweep = run_sweep(MixKind::WastefulPower, tiny());
        let text = render(&sweep);
        for kind in PolicyKind::all() {
            assert!(text.contains(&kind.to_string()), "missing {kind}");
        }
        assert!(text.contains("wall-clock"));
    }
}
