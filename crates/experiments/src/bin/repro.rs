//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all              # everything, paper scale
//! repro fig7 --fast      # one artifact at reduced scale
//! repro all --out results/   # also write per-artifact text + grid CSV
//! repro sweep --replicates 20 --metrics-out m.json
//! ```

use pmstack_experiments::cli::{self, Cli};
use pmstack_experiments::grid::{EvaluationGrid, GridParams};
use pmstack_experiments::{
    campaign, export, figures, hetero, megafleet, replicates, resilience, tables, Testbed,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("repro: {err}\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    run(&cli);
}

fn run(cli: &Cli) {
    let artifact = cli.artifact.as_str();
    // The recorder stays a single disabled branch unless metrics were
    // asked for (--metrics-out) or the run prints the metrics summary
    // (grid --time and sweep, per DESIGN.md §13).
    let summarize = matches!(artifact, "sweep") || (artifact == "grid" && cli.timed);
    // Megafleet's replay-fraction report reads the shard counters, so the
    // recorder is always on for it.
    let record_for_megafleet = artifact == "megafleet";
    let record = cli.metrics_out.is_some() || summarize || record_for_megafleet;
    if record {
        pmstack_obs::enable();
    }
    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir).expect("create --out directory");
    }

    // The serving-plane artifacts are processes, not documents: `serve`
    // blocks until killed, `loadgen` talks to a daemon that is already
    // running. Both bail out before any batch machinery is built.
    if artifact == "serve" {
        let config = pmstackd::DaemonConfig {
            port: cli.port.unwrap_or(7070),
            hosts: cli.hosts.unwrap_or(100_000),
            ..pmstackd::DaemonConfig::default()
        };
        eprintln!(
            "[repro] serve: {} simulated hosts, {} workers, tick {} ms…",
            config.hosts, config.workers, config.tick_ms
        );
        let daemon = match pmstackd::Daemon::spawn(config) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("repro: serve failed to bind: {e}");
                std::process::exit(1);
            }
        };
        println!("pmstackd listening on http://{}", daemon.addr());
        println!(
            "  GET /metrics[?format=prometheus|json|summary]  GET /stream?frames=N&interval_ms=M"
        );
        println!("  POST /submit {{\"app\",\"nodes\",\"policy\"}}  GET /healthz");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    if artifact == "loadgen" {
        let lp = pmstackd::LoadgenParams {
            addr: cli
                .addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:7070".to_string()),
            requests: cli.requests.unwrap_or(5000),
            concurrency: cli.concurrency.unwrap_or(4),
            body: pmstackd::LoadgenParams::default_body(),
        };
        eprintln!(
            "[repro] loadgen: {} requests x {} connections against {}…",
            lp.requests, lp.concurrency, lp.addr
        );
        match pmstackd::run_loadgen(&lp) {
            Ok(report) => {
                print!("{}", pmstackd::loadgen::render(&report));
                if let Some(dir) = &cli.out_dir {
                    std::fs::write(
                        dir.join("BENCH_serve.json"),
                        pmstackd::loadgen::to_bench_json(&report),
                    )
                    .expect("write BENCH_serve.json");
                    eprintln!("[repro] wrote {}", dir.join("BENCH_serve.json").display());
                }
            }
            Err(e) => {
                eprintln!(
                    "repro: loadgen failed (is the daemon up at {}?): {e}",
                    lp.addr
                );
                std::process::exit(1);
            }
        }
        return;
    }

    let (screen_nodes, params) = if cli.fast {
        (400, GridParams::fast())
    } else {
        (2000, GridParams::default())
    };

    // Cheap artifacts need no testbed; build it lazily. Screen seed 6: its
    // largest homogeneous cluster holds the 900 nodes the full-scale grid
    // places (seed 42's tops out at 888 and cannot host the default mixes).
    let needs_testbed = matches!(
        artifact,
        "all" | "table3" | "fig6" | "fig7" | "fig8" | "grid" | "sweep"
    );
    let testbed = needs_testbed.then(|| {
        eprintln!("[repro] screening {screen_nodes} nodes for hardware variation…");
        Testbed::new(screen_nodes, 6)
    });
    let needs_grid = matches!(artifact, "all" | "fig7" | "fig8" | "grid");
    let mut grid_timing = None;
    let grid = needs_grid.then(|| {
        eprintln!(
            "[repro] evaluating 5 policies x 6 mixes x 3 budgets ({} nodes/job, {} iterations)…",
            params.nodes_per_job, params.iterations
        );
        let tb = testbed.as_ref().expect("grid implies testbed");
        if cli.timed {
            let (g, t) = EvaluationGrid::run_timed(tb, params);
            grid_timing = Some(t);
            g
        } else {
            EvaluationGrid::run(tb, params)
        }
    });
    if let Some(t) = &grid_timing {
        eprintln!(
            "[repro] grid timing: prep {:.3}s + eval {:.3}s + assemble {:.3}s = {:.3}s total ({} worker{})",
            t.prep_secs,
            t.eval_secs,
            t.assemble_secs,
            t.total_secs,
            t.workers,
            if t.workers == 1 { "" } else { "s" },
        );
    }

    let emit = |name: &str, body: String| {
        if artifact == "all" || artifact == name {
            println!("{body}");
            println!("{}", "=".repeat(72));
            if let Some(dir) = &cli.out_dir {
                std::fs::write(dir.join(format!("{name}.txt")), &body)
                    .expect("write artifact file");
            }
        }
    };

    emit("table1", tables::table1());
    emit("table2", tables::table2());
    if let Some(tb) = &testbed {
        emit("table3", tables::table3(tb, params.nodes_per_job));
    }
    emit("fig1", figures::fig1(42));
    emit("fig2", figures::fig2());
    emit("fig3", figures::fig3());
    emit("fig4", figures::fig4());
    emit("fig5", figures::fig5());
    if let Some(tb) = &testbed {
        emit("fig6", figures::fig6(tb));
        if artifact == "all" || artifact == "sweep" {
            if let Some(n) = cli.replicates {
                let rp = if cli.fast {
                    replicates::ReplicateParams::fast(n)
                } else {
                    replicates::ReplicateParams::default_scale(n)
                };
                eprintln!(
                    "[repro] replicate sweep: 5 policies x ({n} jittered + 1 clean) full-stack \
                     runs (9 jobs x {} nodes, {} iterations)…",
                    rp.nodes_per_job, rp.iterations
                );
                let sweep = replicates::run_sweep(pmstack_experiments::MixKind::WastefulPower, rp);
                eprintln!(
                    "[repro] sweep timing: {:.3}s wall for {} node iterations ({:.2e} node-iters/s)",
                    sweep.wall_secs,
                    sweep.node_iterations,
                    sweep.throughput(),
                );
                emit("sweep", replicates::render(&sweep));
                if cli.timed {
                    if let Some(dir) = &cli.out_dir {
                        let json = format!(
                            "{{\n  \"benchmark\": \"replicate_sweep\",\n  \"mix\": \"{}\",\n  \
                             \"replicates\": {},\n  \"nodes_per_job\": {},\n  \
                             \"iterations\": {},\n  \"node_iterations\": {},\n  \
                             \"wall_secs\": {:.6},\n  \"node_iters_per_sec\": {:.1}\n}}\n",
                            sweep.mix,
                            rp.replicates,
                            rp.nodes_per_job,
                            rp.iterations,
                            sweep.node_iterations,
                            sweep.wall_secs,
                            sweep.throughput(),
                        );
                        std::fs::write(dir.join("BENCH_sweep.json"), json)
                            .expect("write BENCH_sweep.json");
                        eprintln!("[repro] wrote {}", dir.join("BENCH_sweep.json").display());
                    }
                }
            } else {
                let (npj, steps) = if cli.fast { (6, 10) } else { (25, 20) };
                emit(
                    "sweep",
                    figures::fig_sweep(tb, pmstack_experiments::MixKind::WastefulPower, npj, steps),
                );
            }
        }
    }
    if artifact == "all" || artifact == "faults" {
        let rp = if cli.fast {
            resilience::ResilienceParams::fast()
        } else {
            resilience::ResilienceParams::default_scale()
        };
        eprintln!(
            "[repro] resilience: 5 policies x 2 runs (9 jobs x {} nodes, {} iterations)…",
            rp.nodes_per_job, rp.iterations
        );
        emit("faults", resilience::render(&resilience::run_study(rp)));
    }
    // Megafleet is deliberately excluded from `all`: at its default 100k
    // hosts it is a scale benchmark, not a paper artifact.
    if artifact == "megafleet" {
        let hosts = cli.hosts.unwrap_or(100_000);
        let mp = if cli.fast {
            megafleet::MegafleetParams::fast(hosts)
        } else {
            megafleet::MegafleetParams::default_scale(hosts)
        };
        eprintln!(
            "[repro] megafleet: {hosts} hosts, {}+{}+{}+{} iterations (resolve/balance/steady/churn)…",
            mp.resolve_iters, mp.balance_iters, mp.steady_iters, mp.churn_iters
        );
        let report = megafleet::run_megafleet(&mp);
        emit("megafleet", megafleet::render(&report));
        if cli.timed {
            for p in &report.phases {
                eprintln!(
                    "[repro] megafleet {}: {:.3}s wall, {:.2} ns/host",
                    p.name, p.wall_secs, p.ns_per_host
                );
            }
            if let Some(dir) = &cli.out_dir {
                std::fs::write(
                    dir.join("BENCH_megafleet.json"),
                    megafleet::to_bench_json(&report),
                )
                .expect("write BENCH_megafleet.json");
                eprintln!(
                    "[repro] wrote {}",
                    dir.join("BENCH_megafleet.json").display()
                );
            }
        }
    }
    if artifact == "all" || artifact == "hetero" {
        let hp = if cli.fast {
            hetero::HeteroParams::fast()
        } else {
            hetero::HeteroParams::default_scale()
        };
        eprintln!(
            "[repro] hetero: 5 policies x {{homogeneous, 3-class}} fleets \
             ({} hosts/job, {} ticks)…",
            hp.hosts_per_job, hp.ticks
        );
        emit("hetero", hetero::render(&hetero::run_hetero(&hp)));
    }
    if artifact == "all" || artifact == "facility" {
        let chaos = cli.chaos.unwrap_or(2);
        let mut cp = if cli.fast {
            campaign::CampaignParams::fast(chaos)
        } else {
            campaign::CampaignParams::default_scale(chaos)
        };
        if let Some(days) = cli.days {
            cp.days = days;
        }
        eprintln!(
            "[repro] facility campaign: 5 policies x clean+chaos ({} nodes, {} days, chaos {})…",
            cp.nodes, cp.days, cp.chaos
        );
        emit("facility", campaign::render(&campaign::run_campaign(&cp)));
    }
    if let Some(g) = &grid {
        emit("fig7", figures::fig7(g));
        emit("fig8", figures::fig8(g));
        if artifact == "grid" {
            println!("{}", export::grid_to_csv(g));
        }
        if let Some(dir) = &cli.out_dir {
            std::fs::write(dir.join("grid.csv"), export::grid_to_csv(g)).expect("write grid CSV");
            eprintln!("[repro] wrote {}", dir.join("grid.csv").display());
            if let Some(t) = &grid_timing {
                let json = format!(
                    "{{\n  \"benchmark\": \"evaluation_grid\",\n  \"cells\": {},\n  \
                     \"nodes_per_job\": {},\n  \"iterations\": {},\n  \"workers\": {},\n  \
                     \"prep_secs\": {:.6},\n  \"eval_secs\": {:.6},\n  \
                     \"assemble_secs\": {:.6},\n  \"total_secs\": {:.6}\n}}\n",
                    g.cells.len(),
                    params.nodes_per_job,
                    params.iterations,
                    t.workers,
                    t.prep_secs,
                    t.eval_secs,
                    t.assemble_secs,
                    t.total_secs,
                );
                std::fs::write(dir.join("BENCH_grid.json"), json).expect("write BENCH_grid.json");
                eprintln!("[repro] wrote {}", dir.join("BENCH_grid.json").display());
            }
        }
    }

    if record {
        let snap = pmstack_obs::snapshot();
        if summarize {
            println!("{}", snap.summary());
        }
        if let Some(path) = &cli.metrics_out {
            std::fs::write(path, snap.to_json()).expect("write --metrics-out JSON");
            let prom = path.with_extension(match path.extension() {
                Some(ext) => format!("{}.prom", ext.to_string_lossy()),
                None => "prom".to_string(),
            });
            std::fs::write(&prom, snap.to_prometheus()).expect("write --metrics-out Prometheus");
            eprintln!("[repro] wrote {} and {}", path.display(), prom.display());
        }
    }
}
