//! Machine-readable export of the evaluation results.
//!
//! `repro --out <dir>` writes each artifact as both text and, for the grid,
//! CSV — the formats downstream plotting scripts consume. CSV writing is
//! hand-rolled (RFC 4180 quoting) to keep the dependency set minimal.

use crate::grid::EvaluationGrid;
use std::fmt::Write as _;

/// Quote a CSV field per RFC 4180 when needed.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render one CSV row.
pub fn csv_row(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| csv_field(f))
        .collect::<Vec<_>>()
        .join(",")
}

/// The full evaluation grid as CSV: one row per (mix, budget, policy) cell
/// with every Fig. 7 / Fig. 8 metric.
pub fn grid_to_csv(grid: &EvaluationGrid) -> String {
    let mut out = String::new();
    out.push_str(
        "mix,budget_level,policy,budget_w,total_power_w,pct_of_budget,\
         mean_elapsed_s,energy_j,flops_per_watt,edp,time_ci_frac,\
         time_savings_pct,energy_savings_pct,edp_savings_pct,flops_per_watt_increase_pct\n",
    );
    for c in &grid.cells {
        let (t, e, d, f) = match c.savings {
            Some(s) => (
                format!("{:.4}", s.time_pct),
                format!("{:.4}", s.energy_pct),
                format!("{:.4}", s.edp_pct),
                format!("{:.4}", s.flops_per_watt_pct),
            ),
            None => (String::new(), String::new(), String::new(), String::new()),
        };
        let row = csv_row(&[
            c.mix.to_string(),
            c.level.to_string(),
            c.policy.to_string(),
            format!("{:.1}", c.budget.value()),
            format!("{:.1}", c.total_power.value()),
            format!("{:.3}", c.pct_of_budget),
            format!("{:.4}", c.mean_elapsed.value()),
            format!("{:.1}", c.energy.value()),
            format!("{:.4e}", c.flops_per_watt),
            format!("{:.4e}", c.edp),
            format!("{:.6}", c.time_ci_frac),
            t,
            e,
            d,
            f,
        ]);
        let _ = writeln!(out, "{row}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{EvaluationGrid, GridParams};
    use crate::testbed::Testbed;

    #[test]
    fn quoting_follows_rfc4180() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_row(&["a,b".into(), "c".into()]), "\"a,b\",c");
    }

    #[test]
    fn grid_csv_is_rectangular_and_complete() {
        let tb = Testbed::new(400, 7);
        let grid = EvaluationGrid::run(&tb, GridParams::fast());
        let csv = grid_to_csv(&grid);
        let lines: Vec<&str> = csv.lines().collect();
        // Header + 6 mixes × 3 budgets × 5 policies.
        assert_eq!(lines.len(), 1 + 90);
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        // Baseline rows carry empty savings fields; dynamic rows are full.
        assert!(lines
            .iter()
            .any(|l| l.contains("StaticCaps") && l.ends_with(",,,")));
        assert!(lines
            .iter()
            .any(|l| l.contains("MixedAdaptive") && !l.ends_with(",,,")));
    }
}
