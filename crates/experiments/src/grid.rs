//! The policy × mix × budget evaluation grid (Figs. 7 and 8).

use crate::budgets::{BudgetLevel, MixBudgets};
use crate::mixes::{self, MixKind, WorkloadMix};
use crate::testbed::Testbed;
use pmstack_analysis::metrics::SavingsRow;
use pmstack_analysis::stats::{ci95_half_width, mean};
use pmstack_core::{
    apply_job_runtime, evaluate_mix, policies, JobChar, JobSetup, MixEvaluation, PolicyCtx,
    PolicyKind,
};
use pmstack_simhw::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One evaluated (mix, budget level, policy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// The workload mix.
    pub mix: MixKind,
    /// The over-provisioning level.
    pub level: BudgetLevel,
    /// The policy.
    pub policy: PolicyKind,
    /// The absolute system budget of this cell.
    pub budget: Watts,
    /// Steady total power drawn by the mix.
    pub total_power: Watts,
    /// Fig. 7: power drawn as a percentage of the budget.
    pub pct_of_budget: f64,
    /// Mean job elapsed time.
    pub mean_elapsed: Seconds,
    /// Total mix energy.
    pub energy: Joules,
    /// Achieved FLOPS per watt.
    pub flops_per_watt: f64,
    /// Energy-delay product.
    pub edp: f64,
    /// Relative 95% CI half-width of the mean iteration time.
    pub time_ci_frac: f64,
    /// Fig. 8: savings vs the same-cell `StaticCaps` baseline (absent for
    /// the baseline itself and for `Precharacterized`, which the paper
    /// omits for running over budget).
    pub savings: Option<SavingsRow>,
}

/// The whole grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationGrid {
    /// Every evaluated cell.
    pub cells: Vec<GridCell>,
}

/// Parameters of a grid run.
#[derive(Debug, Clone, Copy)]
pub struct GridParams {
    /// Nodes per job (paper: 100).
    pub nodes_per_job: usize,
    /// Iterations per execution (paper: 100).
    pub iterations: usize,
    /// Relative per-iteration jitter (paper-scale noise: ~0.01).
    pub jitter_sigma: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            nodes_per_job: 100,
            iterations: 100,
            jitter_sigma: 0.01,
        }
    }
}

impl GridParams {
    /// Reduced-scale parameters for quick runs and tests.
    pub fn fast() -> Self {
        Self {
            nodes_per_job: 10,
            iterations: 30,
            jitter_sigma: 0.01,
        }
    }
}

impl EvaluationGrid {
    /// Evaluate all six mixes at all three levels under all five policies,
    /// mixes in parallel.
    pub fn run(testbed: &Testbed, params: GridParams) -> Self {
        let kinds = MixKind::all();
        let mut per_mix: Vec<Option<Vec<GridCell>>> = (0..kinds.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (kind, slot) in kinds.iter().zip(per_mix.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = Some(run_mix(testbed, *kind, params));
                });
            }
        })
        .expect("mix evaluation thread panicked");
        Self {
            cells: per_mix
                .into_iter()
                .flat_map(|c| c.expect("every mix evaluated"))
                .collect(),
        }
    }

    /// Look up one cell.
    pub fn cell(&self, mix: MixKind, level: BudgetLevel, policy: PolicyKind) -> &GridCell {
        self.cells
            .iter()
            .find(|c| c.mix == mix && c.level == level && c.policy == policy)
            .expect("grid covers the full cross product")
    }
}

/// Evaluate one mix at all levels under all policies.
pub fn run_mix(testbed: &Testbed, kind: MixKind, params: GridParams) -> Vec<GridCell> {
    let mix = mixes::build_scaled(kind, params.nodes_per_job);
    let setups = testbed.place(&mix);
    let chars: Vec<JobChar> = setups
        .iter()
        .map(|s| JobChar::analytic(s.config, testbed.model(), &s.host_eps))
        .collect();
    let budgets = MixBudgets::from_characterization(&chars);
    let spec = testbed.model().spec();

    let mut cells = Vec::new();
    for level in BudgetLevel::all() {
        let budget = budgets.get(level);
        let ctx = PolicyCtx {
            system_budget: budget,
            min_node: spec.min_rapl_per_node(),
            tdp_node: spec.tdp_per_node(),
        };
        // Baseline first so the savings rows can reference it.
        let baseline = eval_policy(
            testbed,
            &mix,
            &setups,
            &chars,
            &ctx,
            PolicyKind::StaticCaps,
            level,
            params,
        );
        let mut level_cells = vec![cell_from(
            kind,
            level,
            PolicyKind::StaticCaps,
            budget,
            &baseline,
            None,
        )];
        for policy in [
            PolicyKind::Precharacterized,
            PolicyKind::MinimizeWaste,
            PolicyKind::JobAdaptive,
            PolicyKind::MixedAdaptive,
        ] {
            let eval = eval_policy(testbed, &mix, &setups, &chars, &ctx, policy, level, params);
            let savings = (policy != PolicyKind::Precharacterized).then(|| {
                SavingsRow::from_absolute(
                    baseline.mean_elapsed().value(),
                    eval.mean_elapsed().value(),
                    time_ci_frac(&eval),
                    baseline.total_energy().value(),
                    eval.total_energy().value(),
                    baseline.flops_per_watt(),
                    eval.flops_per_watt(),
                )
            });
            level_cells.push(cell_from(kind, level, policy, budget, &eval, savings));
        }
        cells.extend(level_cells);
    }
    cells
}

#[allow(clippy::too_many_arguments)]
fn eval_policy(
    testbed: &Testbed,
    mix: &WorkloadMix,
    setups: &[JobSetup],
    chars: &[JobChar],
    ctx: &PolicyCtx,
    policy: PolicyKind,
    level: BudgetLevel,
    params: GridParams,
) -> MixEvaluation {
    let policy_impl = policies::by_kind(policy);
    let mut alloc = policy_impl.allocate(ctx, chars);
    // Application-aware policies run their jobs under the power balancer
    // at execution time; model its steady-state effect on the allocation.
    if policy_impl.application_aware() {
        alloc = apply_job_runtime(&alloc, chars, ctx);
    }
    let seed = cell_seed(mix.kind, level, policy);
    evaluate_mix(
        testbed.model(),
        setups,
        &alloc,
        params.iterations,
        params.jitter_sigma,
        seed,
    )
}

fn cell_from(
    mix: MixKind,
    level: BudgetLevel,
    policy: PolicyKind,
    budget: Watts,
    eval: &MixEvaluation,
    savings: Option<SavingsRow>,
) -> GridCell {
    GridCell {
        mix,
        level,
        policy,
        budget,
        total_power: eval.total_power(),
        pct_of_budget: 100.0 * eval.total_power().value() / budget.value(),
        mean_elapsed: eval.mean_elapsed(),
        energy: eval.total_energy(),
        flops_per_watt: eval.flops_per_watt(),
        edp: eval.energy_delay_product(),
        time_ci_frac: time_ci_frac(eval),
        savings,
    }
}

/// Relative CI of the mean iteration time, averaged over jobs.
fn time_ci_frac(eval: &MixEvaluation) -> f64 {
    let per_job: Vec<f64> = eval
        .jobs
        .iter()
        .map(|j| {
            let times: Vec<f64> = j.iteration_times.iter().map(|t| t.value()).collect();
            let m = mean(&times);
            if m <= 0.0 {
                0.0
            } else {
                ci95_half_width(&times) / m
            }
        })
        .collect();
    mean(&per_job)
}

/// A stable seed per grid cell so reruns are bit-identical.
fn cell_seed(mix: MixKind, level: BudgetLevel, policy: PolicyKind) -> u64 {
    let m = MixKind::all().iter().position(|&k| k == mix).unwrap_or(0) as u64;
    let l = BudgetLevel::all()
        .iter()
        .position(|&k| k == level)
        .unwrap_or(0) as u64;
    let p = PolicyKind::all()
        .iter()
        .position(|&k| k == policy)
        .unwrap_or(0) as u64;
    0x9E37_79B9 ^ (m << 16) ^ (l << 8) ^ p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> (Testbed, EvaluationGrid) {
        let tb = Testbed::new(400, 7);
        let grid = EvaluationGrid::run(&tb, GridParams::fast());
        (tb, grid)
    }

    #[test]
    fn grid_covers_full_cross_product() {
        let (_, grid) = small_grid();
        assert_eq!(grid.cells.len(), 6 * 3 * 5);
        for mix in MixKind::all() {
            for level in BudgetLevel::all() {
                for policy in PolicyKind::all() {
                    let c = grid.cell(mix, level, policy);
                    assert!(c.total_power > Watts::ZERO);
                    assert!(c.mean_elapsed.value() > 0.0);
                }
            }
        }
    }

    #[test]
    fn budget_respecting_policies_stay_at_or_under_100pct() {
        let (_, grid) = small_grid();
        for c in &grid.cells {
            if c.policy != PolicyKind::Precharacterized {
                assert!(
                    c.pct_of_budget <= 100.5,
                    "{} {} {}: {:.1}%",
                    c.mix,
                    c.level,
                    c.policy,
                    c.pct_of_budget
                );
            }
        }
    }

    #[test]
    fn precharacterized_exceeds_tight_budgets() {
        // Fig. 7: Precharacterized is over budget everywhere except max.
        let (_, grid) = small_grid();
        let mut over = 0;
        for mix in MixKind::all() {
            let c = grid.cell(mix, BudgetLevel::Min, PolicyKind::Precharacterized);
            if c.pct_of_budget > 100.0 {
                over += 1;
            }
            let c_max = grid.cell(mix, BudgetLevel::Max, PolicyKind::Precharacterized);
            assert!(
                c_max.pct_of_budget <= 100.5,
                "{mix} max: {:.1}%",
                c_max.pct_of_budget
            );
        }
        assert!(over >= 5, "only {over} mixes over budget at min");
    }

    #[test]
    fn mixed_adaptive_never_loses_time_to_static() {
        let (_, grid) = small_grid();
        for c in &grid.cells {
            if c.policy == PolicyKind::MixedAdaptive {
                let s = c.savings.expect("dynamic policies carry savings");
                assert!(
                    s.time_pct > -1.5,
                    "{} {}: MixedAdaptive {:.2}% slower than StaticCaps",
                    c.mix,
                    c.level,
                    s.time_pct
                );
            }
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let tb = Testbed::new(400, 7);
        let a = run_mix(&tb, MixKind::LowPower, GridParams::fast());
        let b = run_mix(&tb, MixKind::LowPower, GridParams::fast());
        assert_eq!(a, b);
    }
}
