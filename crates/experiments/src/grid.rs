//! The policy × mix × budget evaluation grid (Figs. 7 and 8).
//!
//! All 90 (mix, level, policy) cells are independent once each mix's
//! placement, characterization, and budget ladder are known, so the grid
//! fans the cells out over the [`pmstack_exec`] work-stealing pool: a
//! per-mix preparation stage, then one pool task per cell, then an ordered
//! assembly that attaches the Fig. 8 savings rows against each cell's
//! same-(mix, level) `StaticCaps` baseline. Every cell derives its jitter
//! seed from its own coordinates, so the parallel grid is bit-identical to
//! a forced-sequential one ([`pmstack_exec::sequential_scope`]).

use crate::budgets::{BudgetLevel, MixBudgets};
use crate::mixes::{self, MixKind, WorkloadMix};
use crate::testbed::Testbed;
use pmstack_analysis::metrics::SavingsRow;
use pmstack_analysis::stats::{ci95_half_width, mean};
use pmstack_core::{
    apply_job_runtime, evaluate_mix, policies, JobChar, JobSetup, MixEvaluation, PolicyCtx,
    PolicyKind,
};
use pmstack_simhw::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// One evaluated (mix, budget level, policy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// The workload mix.
    pub mix: MixKind,
    /// The over-provisioning level.
    pub level: BudgetLevel,
    /// The policy.
    pub policy: PolicyKind,
    /// The absolute system budget of this cell.
    pub budget: Watts,
    /// Steady total power drawn by the mix.
    pub total_power: Watts,
    /// Fig. 7: power drawn as a percentage of the budget.
    pub pct_of_budget: f64,
    /// Mean job elapsed time.
    pub mean_elapsed: Seconds,
    /// Total mix energy.
    pub energy: Joules,
    /// Achieved FLOPS per watt.
    pub flops_per_watt: f64,
    /// Energy-delay product.
    pub edp: f64,
    /// Relative 95% CI half-width of the mean iteration time.
    pub time_ci_frac: f64,
    /// Fig. 8: savings vs the same-cell `StaticCaps` baseline (absent for
    /// the baseline itself and for `Precharacterized`, which the paper
    /// omits for running over budget).
    pub savings: Option<SavingsRow>,
}

/// The whole grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationGrid {
    /// Every evaluated cell.
    pub cells: Vec<GridCell>,
    /// Keyed lookup index, built on first [`Self::cell`] call; identity is
    /// carried entirely by `cells`.
    index: OnceLock<HashMap<(MixKind, BudgetLevel, PolicyKind), usize>>,
}

impl PartialEq for EvaluationGrid {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
    }
}

/// Wall-clock breakdown of one grid run, for the `repro grid --time`
/// instrumentation and `BENCH_grid.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridTiming {
    /// Per-mix preparation (placement, characterization, budget ladders).
    pub prep_secs: f64,
    /// The 90-cell policy-evaluation fan-out.
    pub eval_secs: f64,
    /// Ordered assembly and savings attribution.
    pub assemble_secs: f64,
    /// End-to-end grid time.
    pub total_secs: f64,
    /// Pool width the run had available.
    pub workers: usize,
}

/// Parameters of a grid run.
#[derive(Debug, Clone, Copy)]
pub struct GridParams {
    /// Nodes per job (paper: 100).
    pub nodes_per_job: usize,
    /// Iterations per execution (paper: 100).
    pub iterations: usize,
    /// Relative per-iteration jitter (paper-scale noise: ~0.01).
    pub jitter_sigma: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        Self {
            nodes_per_job: 100,
            iterations: 100,
            jitter_sigma: 0.01,
        }
    }
}

impl GridParams {
    /// Reduced-scale parameters for quick runs and tests.
    pub fn fast() -> Self {
        Self {
            nodes_per_job: 10,
            iterations: 30,
            jitter_sigma: 0.01,
        }
    }
}

/// The cell emission order within one (mix, level) group — baseline first
/// so its savings reference is adjacent.
const POLICY_ORDER: [PolicyKind; 5] = [
    PolicyKind::StaticCaps,
    PolicyKind::Precharacterized,
    PolicyKind::MinimizeWaste,
    PolicyKind::JobAdaptive,
    PolicyKind::MixedAdaptive,
];

/// Everything a mix's cells share: its placement, characterization, and
/// budget ladder.
struct MixPrep {
    kind: MixKind,
    mix: WorkloadMix,
    setups: Vec<JobSetup>,
    chars: Vec<JobChar>,
    budgets: MixBudgets,
}

impl EvaluationGrid {
    /// Evaluate all six mixes at all three levels under all five policies —
    /// all 90 cells fanned out over the work-stealing pool.
    pub fn run(testbed: &Testbed, params: GridParams) -> Self {
        Self::run_timed(testbed, params).0
    }

    /// [`Self::run`], plus the per-phase wall-clock breakdown.
    pub fn run_timed(testbed: &Testbed, params: GridParams) -> (Self, GridTiming) {
        let t_total = Instant::now();
        let kinds = MixKind::all();
        let preps = pmstack_exec::par_map(&kinds, |&kind| prep_mix(testbed, kind, params));
        let prep_secs = t_total.elapsed().as_secs_f64();

        // One pool task per (mix, level, policy) cell; costs vary by policy
        // and budget level, which is what the pool's stealing absorbs.
        let t_eval = Instant::now();
        let work: Vec<(usize, BudgetLevel, PolicyKind)> = (0..preps.len())
            .flat_map(|m| {
                BudgetLevel::all()
                    .into_iter()
                    .flat_map(move |level| POLICY_ORDER.into_iter().map(move |p| (m, level, p)))
            })
            .collect();
        let evals = pmstack_exec::par_map(&work, |&(m, level, policy)| {
            eval_cell(testbed, &preps[m], level, policy, params)
        });
        let eval_secs = t_eval.elapsed().as_secs_f64();

        let t_asm = Instant::now();
        let levels = BudgetLevel::all();
        let mut cells = Vec::with_capacity(work.len());
        for (m, prep) in preps.iter().enumerate() {
            for (li, &level) in levels.iter().enumerate() {
                let base = (m * levels.len() + li) * POLICY_ORDER.len();
                let group = &evals[base..base + POLICY_ORDER.len()];
                assemble_level(prep.kind, level, prep.budgets.get(level), group, &mut cells);
            }
        }
        let timing = GridTiming {
            prep_secs,
            eval_secs,
            assemble_secs: t_asm.elapsed().as_secs_f64(),
            total_secs: t_total.elapsed().as_secs_f64(),
            workers: pmstack_exec::workers(),
        };
        (Self::from_cells(cells), timing)
    }

    fn from_cells(cells: Vec<GridCell>) -> Self {
        Self {
            cells,
            index: OnceLock::new(),
        }
    }

    /// Look up one cell — O(1) via an index built on first use.
    pub fn cell(&self, mix: MixKind, level: BudgetLevel, policy: PolicyKind) -> &GridCell {
        let index = self.index.get_or_init(|| {
            self.cells
                .iter()
                .enumerate()
                .map(|(i, c)| ((c.mix, c.level, c.policy), i))
                .collect()
        });
        let i = *index
            .get(&(mix, level, policy))
            .expect("grid covers the full cross product");
        &self.cells[i]
    }
}

/// Evaluate one mix at all levels under all policies — same cells, same
/// order as the corresponding slice of [`EvaluationGrid::run`].
pub fn run_mix(testbed: &Testbed, kind: MixKind, params: GridParams) -> Vec<GridCell> {
    let prep = prep_mix(testbed, kind, params);
    let mut cells = Vec::new();
    for level in BudgetLevel::all() {
        let evals: Vec<MixEvaluation> = POLICY_ORDER
            .iter()
            .map(|&policy| eval_cell(testbed, &prep, level, policy, params))
            .collect();
        assemble_level(kind, level, prep.budgets.get(level), &evals, &mut cells);
    }
    cells
}

/// Build a mix's shared inputs: placement, per-job characterization, and
/// the Table III budget ladder.
fn prep_mix(testbed: &Testbed, kind: MixKind, params: GridParams) -> MixPrep {
    let _span = pmstack_obs::span!("grid.prep_mix.secs");
    let mix = mixes::build_scaled(kind, params.nodes_per_job);
    let setups = testbed.place(&mix);
    let chars: Vec<JobChar> = setups
        .iter()
        .map(|s| JobChar::analytic(s.config, testbed.model(), &s.host_eps))
        .collect();
    let budgets = MixBudgets::from_characterization(&chars);
    MixPrep {
        kind,
        mix,
        setups,
        chars,
        budgets,
    }
}

/// Evaluate one independent (mix, level, policy) cell.
fn eval_cell(
    testbed: &Testbed,
    prep: &MixPrep,
    level: BudgetLevel,
    policy: PolicyKind,
    params: GridParams,
) -> MixEvaluation {
    let _span = pmstack_obs::span!("grid.eval_cell.secs");
    let spec = testbed.model().spec();
    let ctx = PolicyCtx {
        system_budget: prep.budgets.get(level),
        min_node: spec.min_rapl_per_node(),
        tdp_node: spec.tdp_per_node(),
    };
    let policy_impl = policies::by_kind(policy);
    let mut alloc = policy_impl.allocate(&ctx, &prep.chars);
    // Application-aware policies run their jobs under the power balancer
    // at execution time; model its steady-state effect on the allocation.
    if policy_impl.application_aware() {
        alloc = apply_job_runtime(&alloc, &prep.chars, &ctx);
    }
    let seed = cell_seed(prep.mix.kind, level, policy);
    evaluate_mix(
        testbed.model(),
        &prep.setups,
        &alloc,
        params.iterations,
        params.jitter_sigma,
        seed,
    )
}

/// Turn one (mix, level) group of evaluations (in [`POLICY_ORDER`]) into
/// grid cells with savings attributed against the `StaticCaps` baseline.
fn assemble_level(
    kind: MixKind,
    level: BudgetLevel,
    budget: Watts,
    evals: &[MixEvaluation],
    out: &mut Vec<GridCell>,
) {
    let baseline = &evals[0];
    out.push(cell_from(
        kind,
        level,
        PolicyKind::StaticCaps,
        budget,
        baseline,
        None,
    ));
    for (policy, eval) in POLICY_ORDER.iter().zip(evals).skip(1) {
        let savings = (*policy != PolicyKind::Precharacterized).then(|| {
            SavingsRow::from_absolute(
                baseline.mean_elapsed().value(),
                eval.mean_elapsed().value(),
                time_ci_frac(eval),
                baseline.total_energy().value(),
                eval.total_energy().value(),
                baseline.flops_per_watt(),
                eval.flops_per_watt(),
            )
        });
        out.push(cell_from(kind, level, *policy, budget, eval, savings));
    }
}

fn cell_from(
    mix: MixKind,
    level: BudgetLevel,
    policy: PolicyKind,
    budget: Watts,
    eval: &MixEvaluation,
    savings: Option<SavingsRow>,
) -> GridCell {
    GridCell {
        mix,
        level,
        policy,
        budget,
        total_power: eval.total_power(),
        pct_of_budget: 100.0 * eval.total_power().value() / budget.value(),
        mean_elapsed: eval.mean_elapsed(),
        energy: eval.total_energy(),
        flops_per_watt: eval.flops_per_watt(),
        edp: eval.energy_delay_product(),
        time_ci_frac: time_ci_frac(eval),
        savings,
    }
}

/// Relative CI of the mean iteration time, averaged over jobs.
fn time_ci_frac(eval: &MixEvaluation) -> f64 {
    let per_job: Vec<f64> = eval
        .jobs
        .iter()
        .map(|j| {
            let times: Vec<f64> = j.iteration_times.iter().map(|t| t.value()).collect();
            let m = mean(&times);
            if m <= 0.0 {
                0.0
            } else {
                ci95_half_width(&times) / m
            }
        })
        .collect();
    mean(&per_job)
}

/// A stable seed per grid cell so reruns are bit-identical.
fn cell_seed(mix: MixKind, level: BudgetLevel, policy: PolicyKind) -> u64 {
    let m = MixKind::all().iter().position(|&k| k == mix).unwrap_or(0) as u64;
    let l = BudgetLevel::all()
        .iter()
        .position(|&k| k == level)
        .unwrap_or(0) as u64;
    let p = PolicyKind::all()
        .iter()
        .position(|&k| k == policy)
        .unwrap_or(0) as u64;
    0x9E37_79B9 ^ (m << 16) ^ (l << 8) ^ p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> (Testbed, EvaluationGrid) {
        let tb = Testbed::new(400, 7);
        let grid = EvaluationGrid::run(&tb, GridParams::fast());
        (tb, grid)
    }

    #[test]
    fn grid_covers_full_cross_product() {
        let (_, grid) = small_grid();
        assert_eq!(grid.cells.len(), 6 * 3 * 5);
        for mix in MixKind::all() {
            for level in BudgetLevel::all() {
                for policy in PolicyKind::all() {
                    let c = grid.cell(mix, level, policy);
                    assert!(c.total_power > Watts::ZERO);
                    assert!(c.mean_elapsed.value() > 0.0);
                }
            }
        }
    }

    #[test]
    fn budget_respecting_policies_stay_at_or_under_100pct() {
        let (_, grid) = small_grid();
        for c in &grid.cells {
            if c.policy != PolicyKind::Precharacterized {
                assert!(
                    c.pct_of_budget <= 100.5,
                    "{} {} {}: {:.1}%",
                    c.mix,
                    c.level,
                    c.policy,
                    c.pct_of_budget
                );
            }
        }
    }

    #[test]
    fn precharacterized_exceeds_tight_budgets() {
        // Fig. 7: Precharacterized is over budget everywhere except max.
        let (_, grid) = small_grid();
        let mut over = 0;
        for mix in MixKind::all() {
            let c = grid.cell(mix, BudgetLevel::Min, PolicyKind::Precharacterized);
            if c.pct_of_budget > 100.0 {
                over += 1;
            }
            let c_max = grid.cell(mix, BudgetLevel::Max, PolicyKind::Precharacterized);
            assert!(
                c_max.pct_of_budget <= 100.5,
                "{mix} max: {:.1}%",
                c_max.pct_of_budget
            );
        }
        assert!(over >= 5, "only {over} mixes over budget at min");
    }

    #[test]
    fn mixed_adaptive_never_loses_time_to_static() {
        let (_, grid) = small_grid();
        for c in &grid.cells {
            if c.policy == PolicyKind::MixedAdaptive {
                let s = c.savings.expect("dynamic policies carry savings");
                assert!(
                    s.time_pct > -1.5,
                    "{} {}: MixedAdaptive {:.2}% slower than StaticCaps",
                    c.mix,
                    c.level,
                    s.time_pct
                );
            }
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let tb = Testbed::new(400, 7);
        let a = run_mix(&tb, MixKind::LowPower, GridParams::fast());
        let b = run_mix(&tb, MixKind::LowPower, GridParams::fast());
        assert_eq!(a, b);
    }
}
