//! The min/ideal/max system power budgets of Table III (§V-C).
//!
//! * **min** — "aggressively over-provisioned… selected by determining
//!   which workload in the mix has the least power consumed by a single
//!   node under the performance-aware characterization; the system is
//!   allocated enough power to provide that amount to each node."
//! * **ideal** — "selected by summing the power used by each node for all
//!   workloads in the mix, as determined by the performance-aware
//!   characterization."
//! * **max** — "conservatively over-provisioned… determining which workload
//!   in the mix has the most power consumed by a single node under the
//!   uncapped characterization; the system is allocated enough power to
//!   provide that much to each node."

use pmstack_core::JobChar;
use pmstack_simhw::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three over-provisioning levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetLevel {
    /// Aggressive over-provisioning (least headroom).
    Min,
    /// Balanced supply and demand.
    Ideal,
    /// Conservative over-provisioning (most headroom).
    Max,
}

impl BudgetLevel {
    /// All three, ascending.
    pub fn all() -> [Self; 3] {
        [Self::Min, Self::Ideal, Self::Max]
    }
}

impl fmt::Display for BudgetLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Min => "min",
            Self::Ideal => "ideal",
            Self::Max => "max",
        })
    }
}

/// The three budgets computed for one mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixBudgets {
    /// The min budget.
    pub min: Watts,
    /// The ideal budget.
    pub ideal: Watts,
    /// The max budget.
    pub max: Watts,
}

impl MixBudgets {
    /// Compute the Table III budgets from the mix's characterization.
    pub fn from_characterization(chars: &[JobChar]) -> Self {
        assert!(!chars.is_empty(), "budgets need at least one job");
        let total_nodes: usize = chars.iter().map(JobChar::num_hosts).sum();

        // min: least single-node needed power of any workload, to each node.
        let least_needed = chars
            .iter()
            .flat_map(|c| c.hosts.iter().map(|h| h.needed))
            .fold(Watts(f64::INFINITY), Watts::min);
        // ideal: the sum of per-node needed power across the whole mix.
        let ideal = chars.iter().map(JobChar::total_needed).sum();
        // max: most single-node uncapped power of any workload, to each node.
        let most_used = chars
            .iter()
            .flat_map(|c| c.hosts.iter().map(|h| h.used))
            .fold(Watts::ZERO, Watts::max);

        Self {
            min: least_needed * total_nodes as f64,
            ideal,
            max: most_used * total_nodes as f64,
        }
    }

    /// Budget for a level.
    pub fn get(&self, level: BudgetLevel) -> Watts {
        match level {
            BudgetLevel::Min => self.min,
            BudgetLevel::Ideal => self.ideal,
            BudgetLevel::Max => self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::{build_scaled, MixKind};
    use crate::testbed::Testbed;
    use pmstack_simhw::quartz_spec;

    fn budgets_for(kind: MixKind) -> (MixBudgets, usize) {
        let tb = Testbed::new(400, 7);
        let mix = build_scaled(kind, 10);
        let setups = tb.place(&mix);
        let chars: Vec<JobChar> = setups
            .iter()
            .map(|s| JobChar::analytic(s.config, tb.model(), &s.host_eps))
            .collect();
        (MixBudgets::from_characterization(&chars), mix.total_nodes())
    }

    #[test]
    fn ordering_min_ideal_max_holds_for_every_mix() {
        for kind in MixKind::all() {
            let (b, _) = budgets_for(kind);
            assert!(b.min <= b.ideal, "{kind}: min {} ideal {}", b.min, b.ideal);
            assert!(b.ideal <= b.max, "{kind}: ideal {} max {}", b.ideal, b.max);
        }
    }

    #[test]
    fn budgets_stay_below_mix_tdp() {
        // Table III footnote: all budgets are below the 240 W/node TDP sum.
        let spec = quartz_spec();
        for kind in MixKind::all() {
            let (b, nodes) = budgets_for(kind);
            let tdp_total = spec.tdp_per_node() * nodes as f64;
            assert!(
                b.max <= tdp_total,
                "{kind}: max {} vs TDP {}",
                b.max,
                tdp_total
            );
            assert!(b.min >= spec.min_rapl_per_node() * nodes as f64 * 0.95);
        }
    }

    #[test]
    fn per_node_budget_ranges_match_table_iii_scale() {
        // Table III: budgets span roughly 150-233 W/node across mixes.
        for kind in MixKind::all() {
            let (b, nodes) = budgets_for(kind);
            let per_node_min = b.min.value() / nodes as f64;
            let per_node_max = b.max.value() / nodes as f64;
            assert!(
                (130.0..235.0).contains(&per_node_min),
                "{kind}: min/node {per_node_min}"
            );
            assert!(
                (190.0..240.0).contains(&per_node_max),
                "{kind}: max/node {per_node_max}"
            );
        }
    }

    #[test]
    fn level_accessor_matches_fields() {
        let b = MixBudgets {
            min: Watts(1.0),
            ideal: Watts(2.0),
            max: Watts(3.0),
        };
        assert_eq!(b.get(BudgetLevel::Min), b.min);
        assert_eq!(b.get(BudgetLevel::Ideal), b.ideal);
        assert_eq!(b.get(BudgetLevel::Max), b.max);
    }
}
