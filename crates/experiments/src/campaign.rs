//! Fault-tolerant facility campaign (`repro facility`).
//!
//! The Fig. 1 simulation ([`crate::facility`]) asks what a facility *draws*;
//! this module asks what it *survives*. A multi-day discrete-event campaign
//! runs the full job failure lifecycle against every §III policy:
//!
//! * **Checkpoint/restart** — running jobs checkpoint on a fixed cadence
//!   (progress stalls for the write); a kill rolls the job back to its last
//!   checkpoint, and the uncheckpointed tail is *wasted node-hours*.
//! * **Retry with backoff** — killed jobs relaunch after a capped
//!   exponential backoff ([`pmstack_rm::RetryPolicy`]); a crash-looping job
//!   hits the max-attempts kill switch and fails terminally.
//! * **Lease timeouts** — the campaign never tells the RM a node died. It
//!   observes heartbeats through a [`pmstack_rm::LeaseTable`]; telemetry
//!   going stale (death *or* a long blackout on a live node) expires the
//!   lease, drains the node, kills and requeues the job on it. Blackout
//!   false positives are repaired when telemetry resumes.
//! * **Budget shocks** — the system budget follows a diurnal grid-price
//!   curve, and chaos adds abrupt drops. An oversubscribed ledger is
//!   resolved in strict priority order: tighten flexible caps, then
//!   checkpoint-and-preempt the newest jobs, then hold the queue — the
//!   [`pmstack_rm::PowerLedger`] is never left oversubscribed.
//!
//! Everything is event-driven off one seeded queue (`(minute, seq)` keyed),
//! all randomness is pre-drawn before the clock starts, and job state lives
//! in ordered maps — two same-seed campaigns are bit-identical, journal and
//! summary included. Fault injection reuses the `simhw` taxonomy via
//! [`FaultPlan::chaos`]; deaths are permanent (no repair crew), blackouts
//! end. The engine drives schedulers through the [`Scheduler`] trait, so
//! the same lifecycle runs over FIFO or backfill queueing unchanged.

use crate::facility::{arrival_rate, job_size, poisson, workload_population};
use pmstack_core::PolicyKind;
use pmstack_kernel::KernelLoad;
use pmstack_obs::{EventKind, StaticCounter, StaticFloatCounter};
use pmstack_rm::{
    BackfillScheduler, JobId, JobLifecycle, JobSpec, LeaseTable, LifecycleState, NodePool,
    PowerLedger, RetryPolicy, Scheduler, SchedulerEvent,
};
use pmstack_simhw::{quartz_spec, FaultKind, FaultPlan, LoadModel, NodeId, PowerModel, Watts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Observability: checkpoints written durably to the parallel file system.
static CHECKPOINTS_SAVED: StaticCounter = StaticCounter::new("facility.checkpoint.saved");
/// Observability: in-flight checkpoint writes destroyed by a kill.
static CHECKPOINTS_LOST: StaticCounter = StaticCounter::new("facility.checkpoint.lost");
/// Observability: node-hours of progress lost to kills (work past the last
/// checkpoint, summed over the killed job's nodes).
static WASTED_NODE_HOURS: StaticFloatCounter =
    StaticFloatCounter::new("facility.wasted_node_hours");

/// Telemetry/heartbeat period, simulated minutes.
const TELEMETRY_MIN: u64 = 5;
/// Heartbeat silence after which a node is declared dead.
const LEASE_TIMEOUT_MIN: u64 = 15;
/// Checkpoint cadence while running.
const CHECKPOINT_INTERVAL_MIN: u64 = 60;
/// Checkpoint write duration (progress stalls).
const CHECKPOINT_WRITE_MIN: u64 = 4;
/// Launch latency between grant and work accruing.
const LAUNCH_LATENCY_MIN: u64 = 2;

/// Scale and chaos knobs of the campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignParams {
    /// Fleet size.
    pub nodes: usize,
    /// Campaign length, days.
    pub days: u64,
    /// Master seed: arrivals, workloads, shocks and faults derive from it.
    pub seed: u64,
    /// Failure intensity (0 = clean; each level multiplies injected faults
    /// and adds grid shocks).
    pub chaos: u32,
    /// Mean job arrivals per hour at the baseline season.
    pub arrivals_per_hour: f64,
    /// Baseline system budget as a fraction of fleet CPU TDP.
    pub budget_frac: f64,
    /// Non-CPU power per node, watts.
    pub non_cpu_w: f64,
    /// CPU power of an idle node, watts.
    pub idle_cpu_w: f64,
}

impl CampaignParams {
    /// Default scale: 512 nodes for 4 days.
    pub fn default_scale(chaos: u32) -> Self {
        Self {
            nodes: 512,
            days: 4,
            seed: 42,
            chaos,
            arrivals_per_hour: 0.8,
            budget_frac: 0.75,
            non_cpu_w: 140.0,
            idle_cpu_w: 80.0,
        }
    }

    /// Reduced scale for quick checks (`--fast`): 128 nodes for 2 days.
    pub fn fast(chaos: u32) -> Self {
        Self {
            nodes: 128,
            days: 2,
            arrivals_per_hour: 0.45,
            ..Self::default_scale(chaos)
        }
    }

    fn horizon_min(&self) -> u64 {
        self.days * 24 * 60
    }
}

/// One policy's campaign outcome at one failure intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// The policy.
    pub kind: PolicyKind,
    /// The failure intensity this row ran at.
    pub chaos: u32,
    /// Jobs that finished all their work.
    pub completed: usize,
    /// Jobs that exhausted their retry budget (terminal failures).
    pub failed: usize,
    /// Kill → requeue transitions (the retry policy granted an attempt).
    pub requeues: usize,
    /// Budget-shock checkpoint-and-preempt evictions.
    pub preemptions: usize,
    /// Lease expiries total…
    pub leases_expired: usize,
    /// …of which the node was actually alive (telemetry blackout).
    pub false_expiries: usize,
    /// Durable checkpoints written.
    pub checkpoints: usize,
    /// Node-hours of progress lost to kills.
    pub wasted_node_h: f64,
    /// Completed work as a fraction of nominal fleet node-hours.
    pub goodput_frac: f64,
    /// Facility energy per completed job, kWh.
    pub energy_per_job_kwh: f64,
    /// Mean queue wait before first launch, minutes.
    pub mean_wait_min: f64,
    /// The bit-reproducible event journal of the run.
    pub journal: Vec<String>,
}

/// The campaign: every policy at clean and (when requested) chaotic
/// intensity, same arrivals, same seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStudy {
    /// The parameters the campaign ran with.
    pub params: CampaignParams,
    /// One row per (chaos level, policy), clean rows first.
    pub rows: Vec<PolicyOutcome>,
}

/// One entry of the pre-characterized workload population.
struct Workload {
    load: KernelLoad,
    /// Uncapped node power, watts.
    p_unc_w: f64,
    /// Node power at the bottom of the p-state ladder, watts.
    p_min_w: f64,
    /// Uncapped lead frequency, Hz (speed denominator).
    unc_lead_hz: f64,
}

/// Per-policy capping behaviour: what a job reserves per node and how far
/// the policy will tighten it under a budget shock. Policies that are not
/// system-aware have `floor == reserve` — they cannot respond, so shocks
/// fall through to preemption.
struct Profile {
    reserve_w: f64,
    floor_w: f64,
}

fn profile(kind: PolicyKind, w: &Workload, share_w: f64) -> Profile {
    let p_unc = w.p_unc_w;
    let p_min = w.p_min_w;
    match kind {
        // User-submitted static cap at uncapped draw; nobody may touch it.
        PolicyKind::Precharacterized => Profile {
            reserve_w: p_unc,
            floor_w: p_unc,
        },
        // Uniform fair share of the base budget, system-aware.
        PolicyKind::StaticCaps => {
            let r = share_w.max(p_min);
            Profile {
                reserve_w: r,
                floor_w: (0.8 * r).max(p_min),
            }
        }
        // Reserves measured draw, reclaims aggressively when told to.
        PolicyKind::MinimizeWaste => Profile {
            reserve_w: p_unc,
            floor_w: (0.7 * p_unc).max(p_min),
        },
        // Performance-aware inside the job but blind to the system budget:
        // a modest reservation it will not renegotiate.
        PolicyKind::JobAdaptive => {
            let r = p_unc.min(1.15 * share_w).max(p_min);
            Profile {
                reserve_w: r,
                floor_w: r,
            }
        }
        // The paper's policy: reserves what the job needs up to its share
        // and yields the most headroom under shocks.
        PolicyKind::MixedAdaptive => {
            let r = p_unc.min(share_w).max(p_min);
            Profile {
                reserve_w: r,
                floor_w: (0.6 * r).max(p_min),
            }
        }
    }
}

/// A pre-drawn job arrival.
struct Arrival {
    at_min: u64,
    nodes: usize,
    work_h: f64,
    workload: usize,
}

/// A pre-drawn budget shock interval.
#[derive(Debug, Clone, Copy)]
struct Shock {
    start_min: u64,
    end_min: u64,
    factor: f64,
}

/// Discrete-event payloads. Time ordering lives in [`QueuedEvent`].
enum Ev {
    /// Heartbeats, lease expiry, accrual, completion, scheduling.
    Telemetry,
    /// Hourly budget recomputation and shock resolution.
    BudgetTick,
    /// A pre-drawn job submission (index into the arrival stream).
    Arrival(usize),
    /// A fault-plan event fires (index into the plan).
    Fault(usize),
    /// Launch latency paid; the job starts accruing (if the epoch holds).
    LaunchDone(JobId, u32),
    /// Periodic checkpoint should begin (if the epoch holds).
    CheckpointDue(JobId, u32),
    /// Checkpoint write finished (if the epoch holds).
    CheckpointDone(JobId, u32),
    /// A killed job's backoff elapsed; it re-enters the queue.
    RetryDue(JobId),
}

/// Heap entry: min-ordered by `(t, seq)`. `seq` is assigned at push, so
/// same-minute events fire in exactly the order they were scheduled —
/// deterministic tie-breaking without comparing payloads.
struct QueuedEvent {
    t: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event.
        other.t.cmp(&self.t).then(other.seq.cmp(&self.seq))
    }
}

/// Campaign-side control block for one job.
struct JobCtl {
    life: JobLifecycle,
    workload: usize,
    /// Invalidates stale LaunchDone/Checkpoint events after any kill,
    /// preemption or completion.
    epoch: u32,
    submit_min: u64,
    started: bool,
    nodes: usize,
    /// Current per-node grant, watts.
    grant_w: f64,
    /// Modeled per-node draw under the grant, watts.
    draw_w: f64,
    /// Progress rate under the grant, fraction of full speed.
    speed: f64,
}

struct Engine<'a> {
    params: &'a CampaignParams,
    policy: PolicyKind,
    model: &'a PowerModel,
    workloads: &'a [Workload],
    share_w: f64,
    base_budget_w: f64,
    sched: Box<dyn Scheduler>,
    lease: LeaseTable,
    retry: RetryPolicy,
    jobs: BTreeMap<JobId, JobCtl>,
    arrivals: Vec<Arrival>,
    shocks: Vec<Shock>,
    faults: Vec<(u64, usize, FaultKind)>,
    /// Nodes the fault plan actually killed.
    dead: BTreeSet<usize>,
    /// Nodes currently drained out of the pool (dead or falsely suspected).
    drained: BTreeSet<usize>,
    /// Telemetry blackout horizon per node.
    blackout_until: BTreeMap<usize, u64>,
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
    hold_queue: bool,
    last_budget_factor: f64,
    last_telemetry_min: u64,
    energy_wh: f64,
    journal: Vec<String>,
    // Tallies.
    completed: usize,
    failed: usize,
    requeues: usize,
    preemptions: usize,
    leases_expired: usize,
    false_expiries: usize,
    checkpoints: usize,
    wasted_node_h: f64,
    goodput_node_h: f64,
    wait_sum_min: f64,
    wait_count: usize,
}

impl Engine<'_> {
    fn push(&mut self, t: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueuedEvent { t, seq, ev });
    }

    fn note(&mut self, t: u64, line: String) {
        self.journal.push(format!("t={t:>6} {line}"));
    }

    /// Recompute a job's draw and speed for its current grant.
    fn apply_grant(&mut self, id: JobId) {
        let ctl = self.jobs.get_mut(&id).expect("job exists");
        let w = &self.workloads[ctl.workload];
        let op = w.load.operating_point(self.model, 1.0, Watts(ctl.grant_w));
        ctl.draw_w = op.power.value();
        ctl.speed = op.lead.value() / w.unc_lead_hz;
    }

    /// The diurnal × shock budget at minute `t`, watts, plus the shock
    /// factor in effect.
    fn budget_at(&self, t: u64) -> (f64, f64) {
        let hour = (t / 60) % 24;
        // Grid prices bottom out at night: the budget peaks around 03:00
        // and sags through the afternoon.
        let diurnal = 1.0 + 0.08 * (2.0 * std::f64::consts::PI * (hour as f64 - 3.0) / 24.0).cos();
        let shock = self
            .shocks
            .iter()
            .filter(|s| s.start_min <= t && t < s.end_min)
            .map(|s| s.factor)
            .fold(1.0, f64::min);
        (self.base_budget_w * diurnal * shock, shock)
    }

    /// One telemetry tick: accrue, complete, heartbeat, expire leases,
    /// repair false positives, schedule.
    fn telemetry(&mut self, t: u64) {
        let dt_h = (t - self.last_telemetry_min) as f64 / 60.0;
        self.last_telemetry_min = t;

        // Accrue progress and energy over the elapsed interval.
        let mut busy_nodes = 0usize;
        let mut busy_draw_w = 0.0;
        let mut finished: Vec<JobId> = Vec::new();
        for (&id, ctl) in self.jobs.iter_mut() {
            match ctl.life.state() {
                LifecycleState::Running => {
                    ctl.life.accrue(ctl.speed * dt_h);
                    busy_nodes += ctl.nodes;
                    busy_draw_w += ctl.nodes as f64 * ctl.draw_w;
                    if ctl.life.remaining_h() < 1e-9 {
                        finished.push(id);
                    }
                }
                LifecycleState::Launching | LifecycleState::Checkpointing => {
                    busy_nodes += ctl.nodes;
                    busy_draw_w += ctl.nodes as f64 * ctl.draw_w;
                }
                _ => {}
            }
        }
        let managed = self.sched.total_nodes();
        let idle_nodes = managed.saturating_sub(busy_nodes);
        self.energy_wh += (busy_draw_w
            + idle_nodes as f64 * self.params.idle_cpu_w
            + managed as f64 * self.params.non_cpu_w)
            * dt_h;

        for id in finished {
            let ctl = self.jobs.get_mut(&id).expect("finished job exists");
            ctl.life.complete();
            ctl.epoch += 1;
            let (nodes, work_h) = (ctl.nodes, ctl.life.work_h());
            self.sched.complete(id);
            self.completed += 1;
            self.goodput_node_h += work_h * nodes as f64;
            self.note(t, format!("complete {id} work={work_h:.2}h"));
        }

        // Heartbeats from live, un-blacked-out, managed nodes.
        for node in 0..self.params.nodes {
            if self.dead.contains(&node) || self.drained.contains(&node) {
                continue;
            }
            let blacked = self
                .blackout_until
                .get(&node)
                .is_some_and(|&until| t < until);
            if !blacked {
                self.lease.beat(NodeId(node), t);
            }
        }

        // Expire stale leases: drain the node, kill and requeue its job.
        for node in self.lease.expire(t) {
            self.leases_expired += 1;
            let alive = !self.dead.contains(&node.0);
            if alive {
                self.false_expiries += 1;
            }
            self.drained.insert(node.0);
            pmstack_obs::event(
                t as f64 * 60.0,
                EventKind::LeaseExpired {
                    node: node.0 as u64,
                },
            );
            self.note(
                t,
                format!(
                    "lease-expired node={} ({})",
                    node.0,
                    if alive { "blackout" } else { "dead" }
                ),
            );
            for ev in self.sched.fail_node_requeue(node) {
                if let SchedulerEvent::Requeued { job, .. } = ev {
                    self.kill(t, job);
                }
            }
        }

        // Repair false positives: a drained-but-alive node whose blackout
        // ended resumes telemetry and returns to service.
        let repairable: Vec<usize> = self
            .drained
            .iter()
            .copied()
            .filter(|n| {
                !self.dead.contains(n) && self.blackout_until.get(n).is_none_or(|&until| until <= t)
            })
            .collect();
        for node in repairable {
            self.drained.remove(&node);
            self.sched.restore_node(NodeId(node));
            self.lease.track(NodeId(node), t);
            self.note(t, format!("restore node={node} (telemetry resumed)"));
        }

        // Start whatever fits, unless a shock is holding the queue.
        if !self.hold_queue {
            self.start_jobs(t);
        }
    }

    /// Run the scheduler and absorb its start decisions.
    fn start_jobs(&mut self, t: u64) {
        for ev in self.sched.tick() {
            if let SchedulerEvent::Started { job, nodes, power } = ev {
                let ctl = self.jobs.get_mut(&job).expect("started job exists");
                ctl.life.launch();
                ctl.nodes = nodes.len();
                ctl.grant_w = power.value() / nodes.len() as f64;
                let first = !ctl.started;
                ctl.started = true;
                let (attempt, epoch, submit_min) = (ctl.life.attempts(), ctl.epoch, ctl.submit_min);
                if first {
                    self.wait_sum_min += (t - submit_min) as f64;
                    self.wait_count += 1;
                }
                self.apply_grant(job);
                self.push(t + LAUNCH_LATENCY_MIN, Ev::LaunchDone(job, epoch));
                self.note(t, format!("launch {job} attempt={attempt}"));
            }
        }
    }

    /// A job lost its nodes to a kill: roll back to the checkpoint, count
    /// the waste, and either schedule the retry or fail it terminally.
    fn kill(&mut self, t: u64, id: JobId) {
        let ctl = self.jobs.get_mut(&id).expect("killed job exists");
        if ctl.life.state() == LifecycleState::Checkpointing {
            CHECKPOINTS_LOST.inc();
        }
        let wasted_node_h = ctl.life.fail() * ctl.nodes as f64;
        ctl.epoch += 1;
        let attempts = ctl.life.attempts();
        self.wasted_node_h += wasted_node_h;
        WASTED_NODE_HOURS.add(wasted_node_h);
        match self.retry.delay_for(attempts) {
            Some(delay_s) => {
                self.jobs
                    .get_mut(&id)
                    .expect("killed job exists")
                    .life
                    .requeue();
                self.requeues += 1;
                let delay_min = ((delay_s / 60.0).ceil() as u64).max(1);
                self.push(t + delay_min, Ev::RetryDue(id));
                self.note(
                    t,
                    format!(
                        "kill {id} attempt={attempts} wasted={wasted_node_h:.2}nh retry+{delay_min}m"
                    ),
                );
            }
            None => {
                self.failed += 1;
                self.note(
                    t,
                    format!("kill {id} attempt={attempts} wasted={wasted_node_h:.2}nh TERMINAL"),
                );
            }
        }
    }

    /// Hourly budget update: follow the tariff, resolve any
    /// oversubscription in strict degradation order.
    fn budget_tick(&mut self, t: u64) {
        let (budget_w, shock_factor) = self.budget_at(t);
        if shock_factor != self.last_budget_factor {
            pmstack_obs::event(t as f64 * 60.0, EventKind::BudgetShock { budget_w });
            self.note(
                t,
                format!("budget {budget_w:.0}W (shock x{shock_factor:.2})"),
            );
            self.last_budget_factor = shock_factor;
        }
        let mut over = self
            .sched
            .ledger_mut()
            .set_system_budget(Watts(budget_w))
            .value();

        if over > 1e-9 {
            // 1. Tighten flexible caps, newest jobs first.
            let held = self.held_jobs();
            for &id in held.iter().rev() {
                if over <= 1e-9 {
                    break;
                }
                let ctl = &self.jobs[&id];
                let floor =
                    profile(self.policy, &self.workloads[ctl.workload], self.share_w).floor_w;
                let slack_w = (ctl.grant_w - floor) * ctl.nodes as f64;
                if slack_w <= 1e-9 {
                    continue;
                }
                let cut_w = slack_w.min(over);
                // `reclaim`, not `reserve`: shrinking through admission
                // control would be refused while the ledger is over budget.
                let reclaimed = self.sched.ledger_mut().reclaim(id, Watts(cut_w)).value();
                let ctl = self.jobs.get_mut(&id).expect("held job exists");
                ctl.grant_w -= reclaimed / ctl.nodes as f64;
                over -= reclaimed;
                self.apply_grant(id);
                self.note(t, format!("tighten {id} -{reclaimed:.0}W"));
            }
            // 2. Checkpoint-and-preempt the newest jobs until it fits.
            while over > 1e-9 {
                let Some(&victim) = self.held_jobs().last() else {
                    break;
                };
                let ctl = self.jobs.get_mut(&victim).expect("victim exists");
                ctl.life.preempt();
                ctl.epoch += 1;
                self.preemptions += 1;
                if let SchedulerEvent::Preempted { power, .. } = self.sched.preempt(victim) {
                    over -= power.value();
                }
                self.note(t, format!("preempt {victim}"));
                // 3. Preemption means demand exceeds the shocked budget:
                // hold the queue until the ledger clears comfortably.
                self.hold_queue = true;
            }
        } else if self.hold_queue && self.sched.ledger().reserved().value() <= 0.95 * budget_w {
            self.hold_queue = false;
            self.note(t, "release queue hold".to_string());
        }

        // Relax tightened grants back toward their reservations, oldest
        // jobs first, as far as the recovered budget admits.
        if over <= 1e-9 {
            for id in self.held_jobs() {
                let ctl = &self.jobs[&id];
                let reserve =
                    profile(self.policy, &self.workloads[ctl.workload], self.share_w).reserve_w;
                if ctl.grant_w < reserve - 1e-9 {
                    let want = Watts(reserve * ctl.nodes as f64);
                    if self.sched.rebudget(id, want).is_ok() {
                        let ctl = self.jobs.get_mut(&id).expect("held job exists");
                        ctl.grant_w = reserve;
                        self.apply_grant(id);
                    }
                }
            }
        }

        let reserved = self.sched.ledger().reserved().value();
        assert!(
            reserved <= budget_w + 1e-6,
            "ledger oversubscribed after degradation: {reserved} W reserved, {budget_w} W budget"
        );
    }

    /// Jobs currently holding nodes, oldest first (ascending id).
    fn held_jobs(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, c)| {
                matches!(
                    c.life.state(),
                    LifecycleState::Launching
                        | LifecycleState::Running
                        | LifecycleState::Checkpointing
                )
            })
            .map(|(&id, _)| id)
            .collect()
    }

    fn run(&mut self) {
        let end = self.params.horizon_min();
        for node in 0..self.params.nodes {
            self.lease.track(NodeId(node), 0);
        }
        while let Some(QueuedEvent { t, ev, .. }) = self.heap.pop() {
            if t > end {
                break;
            }
            match ev {
                Ev::Telemetry => self.telemetry(t),
                Ev::BudgetTick => self.budget_tick(t),
                Ev::Arrival(i) => {
                    let a = &self.arrivals[i];
                    let (nodes, work_h, workload) = (a.nodes, a.work_h, a.workload);
                    let reserve =
                        profile(self.policy, &self.workloads[workload], self.share_w).reserve_w;
                    let spec = JobSpec::new("campaign", nodes).with_power_hint(Watts(reserve));
                    let id = self.sched.submit(spec);
                    self.jobs.insert(
                        id,
                        JobCtl {
                            life: JobLifecycle::new(work_h),
                            workload,
                            epoch: 0,
                            submit_min: t,
                            started: false,
                            nodes,
                            grant_w: reserve,
                            draw_w: 0.0,
                            speed: 0.0,
                        },
                    );
                    self.note(t, format!("submit {id} nodes={nodes} work={work_h:.2}h"));
                }
                Ev::Fault(i) => {
                    let (_, host, kind) = self.faults[i];
                    match kind {
                        FaultKind::NodeDeath => {
                            self.dead.insert(host);
                            self.note(t, format!("fault death node={host}"));
                        }
                        FaultKind::TelemetryDropout { iterations } => {
                            let until = t + iterations as u64;
                            let entry = self.blackout_until.entry(host).or_insert(0);
                            *entry = (*entry).max(until);
                            self.note(t, format!("fault blackout node={host} {iterations}m"));
                        }
                        // The chaos plan only emits deaths and dropouts;
                        // RAPL/MSR faults live below this layer.
                        _ => {}
                    }
                }
                Ev::LaunchDone(id, epoch) => {
                    let ctl = self.jobs.get_mut(&id).expect("job exists");
                    if ctl.epoch == epoch && ctl.life.state() == LifecycleState::Launching {
                        ctl.life.run();
                        self.push(t + CHECKPOINT_INTERVAL_MIN, Ev::CheckpointDue(id, epoch));
                    }
                }
                Ev::CheckpointDue(id, epoch) => {
                    let ctl = self.jobs.get_mut(&id).expect("job exists");
                    if ctl.epoch == epoch && ctl.life.state() == LifecycleState::Running {
                        ctl.life.checkpoint_begin();
                        self.push(t + CHECKPOINT_WRITE_MIN, Ev::CheckpointDone(id, epoch));
                    }
                }
                Ev::CheckpointDone(id, epoch) => {
                    let ctl = self.jobs.get_mut(&id).expect("job exists");
                    if ctl.epoch == epoch && ctl.life.state() == LifecycleState::Checkpointing {
                        ctl.life.checkpoint_end();
                        let progress = ctl.life.checkpointed_h();
                        self.checkpoints += 1;
                        CHECKPOINTS_SAVED.inc();
                        pmstack_obs::event(
                            t as f64 * 60.0,
                            EventKind::CheckpointSaved {
                                job: id.0,
                                progress_h: progress,
                            },
                        );
                        self.note(t, format!("checkpoint {id} progress={progress:.2}h"));
                        self.push(t + CHECKPOINT_INTERVAL_MIN, Ev::CheckpointDue(id, epoch));
                    }
                }
                Ev::RetryDue(id) => {
                    if self.jobs[&id].life.state() == LifecycleState::Requeued {
                        self.sched.enqueue(id);
                        self.note(t, format!("retry {id} queued"));
                    }
                }
            }
        }
    }
}

/// Simulate one (policy, chaos) cell. Drives the scheduler purely through
/// the [`Scheduler`] trait, so any queueing discipline slots in.
fn simulate_cell(
    params: &CampaignParams,
    policy: PolicyKind,
    chaos: u32,
    model: &PowerModel,
    workloads: &[Workload],
    sched: Box<dyn Scheduler>,
) -> PolicyOutcome {
    let spec_tdp = model.spec().tdp_per_node().value();
    let share_w = params.budget_frac * spec_tdp;
    let base_budget_w = share_w * params.nodes as f64;

    // Pre-draw the arrival stream: identical for every policy and chaos
    // level, and independent of anything that happens during execution.
    let mut arr_rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x00a2_217a);
    let mut arrivals = Vec::new();
    for day in 0..params.days {
        for hour in 0..24u64 {
            let rate = arrival_rate(day as usize, params.arrivals_per_hour);
            for _ in 0..poisson(&mut arr_rng, rate) {
                let at_min = day * 1440 + hour * 60 + arr_rng.gen_range(0..60u64);
                let nodes = job_size(&mut arr_rng).min(params.nodes / 2).max(1);
                let work_h = 1.0 + arr_rng.gen_range(0.0..16.0);
                let workload = arr_rng.gen_range(0..workloads.len());
                arrivals.push(Arrival {
                    at_min,
                    nodes,
                    work_h,
                    workload,
                });
            }
        }
    }
    arrivals.sort_by_key(|a| a.at_min);

    // Pre-draw budget shocks (chaos ≥ 1 only). Same stream for every
    // policy: the comparison is apples-to-apples.
    let mut shocks = Vec::new();
    if chaos > 0 {
        let mut shock_rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x0005_40c4);
        let count = ((params.days * chaos as u64) / 2).max(1);
        for _ in 0..count {
            let start_min = shock_rng.gen_range(0..params.horizon_min());
            let dur: u64 = shock_rng.gen_range(120..=300);
            let factor = shock_rng.gen_range(0.55..0.8);
            shocks.push(Shock {
                start_min,
                end_min: start_min + dur,
                factor,
            });
        }
        shocks.sort_by_key(|s| s.start_min);
    }

    let plan = FaultPlan::chaos(params.seed, params.nodes, params.horizon_min(), chaos);
    let faults: Vec<(u64, usize, FaultKind)> = plan
        .events()
        .iter()
        .map(|e| (e.at_iteration, e.host, e.kind))
        .collect();

    let mut engine = Engine {
        params,
        policy,
        model,
        workloads,
        share_w,
        base_budget_w,
        sched,
        lease: LeaseTable::new(LEASE_TIMEOUT_MIN),
        retry: RetryPolicy::default(),
        jobs: BTreeMap::new(),
        arrivals,
        shocks,
        faults,
        dead: BTreeSet::new(),
        drained: BTreeSet::new(),
        blackout_until: BTreeMap::new(),
        heap: BinaryHeap::new(),
        seq: 0,
        hold_queue: false,
        last_budget_factor: 1.0,
        last_telemetry_min: 0,
        energy_wh: 0.0,
        journal: Vec::new(),
        completed: 0,
        failed: 0,
        requeues: 0,
        preemptions: 0,
        leases_expired: 0,
        false_expiries: 0,
        checkpoints: 0,
        wasted_node_h: 0.0,
        goodput_node_h: 0.0,
        wait_sum_min: 0.0,
        wait_count: 0,
    };
    engine
        .sched
        .ledger_mut()
        .set_system_budget(Watts(base_budget_w));

    // Pre-schedule the periodic and pre-drawn events. Budget ticks are
    // pushed first so that at any shared minute the budget moves before
    // telemetry schedules against it.
    let horizon = params.horizon_min();
    for t in (0..=horizon).step_by(60) {
        engine.push(t, Ev::BudgetTick);
    }
    for t in (TELEMETRY_MIN..=horizon).step_by(TELEMETRY_MIN as usize) {
        engine.push(t, Ev::Telemetry);
    }
    for i in 0..engine.faults.len() {
        let t = engine.faults[i].0;
        engine.push(t, Ev::Fault(i));
    }
    for i in 0..engine.arrivals.len() {
        let t = engine.arrivals[i].at_min;
        engine.push(t, Ev::Arrival(i));
    }

    engine.run();

    let nominal_node_h = (params.nodes as u64 * params.days * 24) as f64;
    PolicyOutcome {
        kind: policy,
        chaos,
        completed: engine.completed,
        failed: engine.failed,
        requeues: engine.requeues,
        preemptions: engine.preemptions,
        leases_expired: engine.leases_expired,
        false_expiries: engine.false_expiries,
        checkpoints: engine.checkpoints,
        wasted_node_h: engine.wasted_node_h,
        goodput_frac: engine.goodput_node_h / nominal_node_h,
        energy_per_job_kwh: engine.energy_wh / 1000.0 / engine.completed.max(1) as f64,
        mean_wait_min: engine.wait_sum_min / engine.wait_count.max(1) as f64,
        journal: engine.journal,
    }
}

/// The characterized workload population with its power envelope.
fn characterize(model: &PowerModel) -> Vec<Workload> {
    let tdp = model.spec().tdp_per_node();
    workload_population()
        .into_iter()
        .map(|c| {
            let load = KernelLoad::new(c, model.spec());
            let unc = load.operating_point(model, 1.0, tdp);
            let bottom = load.operating_point(model, 1.0, Watts(0.0));
            Workload {
                p_unc_w: unc.power.value(),
                p_min_w: bottom.power.value(),
                unc_lead_hz: unc.lead.value(),
                load,
            }
        })
        .collect()
}

/// Run the campaign: all five policies at chaos 0 and, when `params.chaos`
/// is nonzero, at `params.chaos`.
pub fn run_campaign(params: &CampaignParams) -> CampaignStudy {
    let spec = quartz_spec();
    let model = PowerModel::new(spec).expect("quartz spec is valid");
    let tdp = model.spec().tdp_per_node();
    let workloads = characterize(&model);

    let mut levels = vec![0u32];
    if params.chaos > 0 {
        levels.push(params.chaos);
    }
    let mut rows = Vec::new();
    for &chaos in &levels {
        for kind in PolicyKind::all() {
            let sched = Box::new(BackfillScheduler::new(
                NodePool::new(params.nodes),
                PowerLedger::new(tdp * params.nodes as f64),
                tdp,
            ));
            rows.push(simulate_cell(
                params, kind, chaos, &model, &workloads, sched,
            ));
        }
    }
    CampaignStudy {
        params: *params,
        rows,
    }
}

/// Render the campaign as a text artifact.
pub fn render(study: &CampaignStudy) -> String {
    use pmstack_analysis::render::table;
    let header = [
        "policy",
        "chaos",
        "done",
        "failed",
        "requeue",
        "preempt",
        "leases",
        "ckpts",
        "wasted nh",
        "goodput",
        "kWh/job",
        "wait min",
    ];
    let rows: Vec<Vec<String>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.chaos.to_string(),
                r.completed.to_string(),
                r.failed.to_string(),
                r.requeues.to_string(),
                r.preemptions.to_string(),
                format!("{} ({}fp)", r.leases_expired, r.false_expiries),
                r.checkpoints.to_string(),
                format!("{:.1}", r.wasted_node_h),
                format!("{:.1}%", r.goodput_frac * 100.0),
                format!("{:.1}", r.energy_per_job_kwh),
                format!("{:.0}", r.mean_wait_min),
            ]
        })
        .collect();
    format!(
        "FACILITY CAMPAIGN: JOB FAILURE LIFECYCLE x 5 POLICIES ({} nodes, {} days, \
         chaos {})\n\n{}\n\
         lifecycle: checkpoint every {}m (write {}m), lease timeout {}m,\n\
         retry backoff 10m..60m capped, max 5 attempts; budget shocks resolved\n\
         by tighten -> preempt -> hold; the ledger is never oversubscribed.\n",
        study.params.nodes,
        study.params.days,
        study.params.chaos,
        table(&header, &rows),
        CHECKPOINT_INTERVAL_MIN,
        CHECKPOINT_WRITE_MIN,
        LEASE_TIMEOUT_MIN,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_rm::FifoScheduler;

    fn tiny() -> CampaignParams {
        CampaignParams {
            nodes: 48,
            days: 1,
            seed: 11,
            chaos: 2,
            arrivals_per_hour: 0.5,
            ..CampaignParams::default_scale(2)
        }
    }

    #[test]
    fn same_seed_campaigns_are_bit_identical() {
        let a = run_campaign(&tiny());
        let b = run_campaign(&tiny());
        assert_eq!(a, b, "journals and summaries must match bit-for-bit");
    }

    #[test]
    fn chaos_injects_failures_and_jobs_still_complete() {
        let study = run_campaign(&tiny());
        let clean: Vec<_> = study.rows.iter().filter(|r| r.chaos == 0).collect();
        let chaotic: Vec<_> = study.rows.iter().filter(|r| r.chaos > 0).collect();
        assert_eq!(clean.len(), 5);
        assert_eq!(chaotic.len(), 5);
        for r in &clean {
            assert_eq!(r.leases_expired, 0, "{}: clean run expired leases", r.kind);
            assert_eq!(r.requeues, 0, "{}: clean run requeued", r.kind);
            assert!(r.completed > 0, "{}: clean run completed nothing", r.kind);
        }
        for r in &chaotic {
            assert!(r.leases_expired > 0, "{}: chaos expired no leases", r.kind);
            assert!(r.requeues > 0, "{}: chaos requeued nothing", r.kind);
            assert!(r.completed > 0, "{}: chaos completed nothing", r.kind);
            assert!(r.checkpoints > 0, "{}: no checkpoints written", r.kind);
            assert!(
                r.wasted_node_h > 0.0,
                "{}: kills wasted no node-hours",
                r.kind
            );
        }
    }

    #[test]
    fn engine_runs_over_fifo_through_the_trait() {
        // The engine must not depend on the backfill discipline: drive one
        // cell over a plain FIFO scheduler via the same trait object.
        let params = tiny();
        let model = PowerModel::new(quartz_spec()).unwrap();
        let tdp = model.spec().tdp_per_node();
        let workloads = characterize(&model);
        let sched = Box::new(FifoScheduler::new(
            NodePool::new(params.nodes),
            PowerLedger::new(tdp * params.nodes as f64),
            tdp,
        ));
        let row = simulate_cell(
            &params,
            PolicyKind::MixedAdaptive,
            2,
            &model,
            &workloads,
            sched,
        );
        assert!(row.completed > 0);
        assert!(row.leases_expired > 0);
    }

    #[test]
    fn render_mentions_every_policy() {
        let study = run_campaign(&CampaignParams { chaos: 0, ..tiny() });
        let text = render(&study);
        for kind in PolicyKind::all() {
            assert!(text.contains(&kind.to_string()), "missing {kind}");
        }
    }
}
