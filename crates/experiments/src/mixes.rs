//! The six workload mixes of Table II (§V-B).
//!
//! The printed table in the paper is partially garbled; memberships below
//! are reconstructed from the legible fragments plus the §V-B prose
//! descriptions of what each mix is *for* (documented per mix). All
//! multi-job mixes are 9 jobs × 100 nodes; `HighImbalance` is a single
//! 900-node job.

use pmstack_kernel::{Imbalance, KernelConfig, VectorWidth, WaitingFraction};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use Imbalance::{Balanced, ThreeX, TwoX};
use VectorWidth::{Xmm, Ymm};
use WaitingFraction::{P0, P25, P50, P75};

/// The six mixes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixKind {
    /// Best case for `MinimizeWaste`: a range of average powers, all used
    /// power needed for performance (balanced jobs only).
    NeedUsedPower,
    /// Best case for `JobAdaptive`: one highly imbalanced job across all
    /// nodes.
    HighImbalance,
    /// Best case for `MixedAdaptive`: unconstrained power consumption far
    /// exceeds the power needed when balanced for performance.
    WastefulPower,
    /// The nine lowest-power configurations.
    LowPower,
    /// The nine highest-power configurations.
    HighPower,
    /// Nine configurations from a seeded random shuffle of the space.
    RandomLarge,
}

impl MixKind {
    /// All six, in the paper's column order.
    pub fn all() -> [Self; 6] {
        [
            Self::NeedUsedPower,
            Self::HighImbalance,
            Self::WastefulPower,
            Self::LowPower,
            Self::HighPower,
            Self::RandomLarge,
        ]
    }
}

impl fmt::Display for MixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::NeedUsedPower => "NeedUsedPower",
            Self::HighImbalance => "HighImbalance",
            Self::WastefulPower => "WastefulPower",
            Self::LowPower => "LowPower",
            Self::HighPower => "HighPower",
            Self::RandomLarge => "RandomLarge",
        })
    }
}

/// A concrete workload mix: named kernel configurations with node counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Which Table II mix this is.
    pub kind: MixKind,
    /// `(label, config, nodes)` per job.
    pub jobs: Vec<(String, KernelConfig, usize)>,
}

impl WorkloadMix {
    /// Total nodes across jobs.
    pub fn total_nodes(&self) -> usize {
        self.jobs.iter().map(|(_, _, n)| n).sum()
    }
}

fn cfg(i: f64, v: VectorWidth, w: WaitingFraction, k: Imbalance) -> KernelConfig {
    KernelConfig::new(i, v, w, k)
}

/// Build a Table II mix at the paper's scale (9 × 100 nodes, or 1 × 900).
pub fn build(kind: MixKind) -> WorkloadMix {
    build_scaled(kind, 100)
}

/// Build a mix with `nodes_per_job` nodes per job (scaled-down grids use
/// smaller jobs; `HighImbalance` always takes 9× that as one job).
pub fn build_scaled(kind: MixKind, nodes_per_job: usize) -> WorkloadMix {
    let configs: Vec<KernelConfig> = match kind {
        // All balanced ymm jobs spanning the intensity range: every watt
        // consumed is needed, with a spread of average power levels.
        MixKind::NeedUsedPower => vec![
            cfg(0.0, Ymm, P0, Balanced),
            cfg(0.25, Ymm, P0, Balanced),
            cfg(0.5, Ymm, P0, Balanced),
            cfg(1.0, Ymm, P0, Balanced),
            cfg(2.0, Ymm, P0, Balanced),
            cfg(4.0, Ymm, P0, Balanced),
            cfg(8.0, Ymm, P0, Balanced),
            cfg(16.0, Ymm, P0, Balanced),
            cfg(32.0, Ymm, P0, Balanced),
        ],
        // One job, every node: heavy waiting and strong imbalance give the
        // within-job balancer maximal slack to exploit.
        MixKind::HighImbalance => {
            return WorkloadMix {
                kind,
                jobs: vec![(
                    "imbalanced".to_string(),
                    cfg(16.0, Ymm, P75, ThreeX),
                    nodes_per_job * 9,
                )],
            };
        }
        // Polling/imbalance-heavy jobs whose unconstrained draw far exceeds
        // balanced need, plus two balanced power-bound jobs to receive the
        // reclaimed watts.
        MixKind::WastefulPower => vec![
            cfg(0.25, Ymm, P50, TwoX),
            cfg(1.0, Ymm, P75, ThreeX),
            cfg(2.0, Ymm, P25, TwoX),
            cfg(4.0, Ymm, P75, TwoX),
            cfg(8.0, Ymm, P75, ThreeX),
            cfg(8.0, Ymm, P25, ThreeX),
            cfg(16.0, Ymm, P50, ThreeX),
            cfg(8.0, Ymm, P0, Balanced),
            cfg(16.0, Ymm, P0, Balanced),
        ],
        // The nine lowest-power configurations: memory-bound intensities,
        // narrow vectors, plenty of waiting.
        MixKind::LowPower => vec![
            cfg(0.0, Ymm, P50, TwoX),
            cfg(0.0, Ymm, P75, TwoX),
            cfg(0.25, Ymm, P75, ThreeX),
            cfg(0.25, Xmm, P50, TwoX),
            cfg(0.5, Ymm, P75, TwoX),
            cfg(1.0, Ymm, P75, ThreeX),
            cfg(0.5, Xmm, P50, ThreeX),
            cfg(1.0, Ymm, P50, TwoX),
            cfg(0.25, Ymm, P25, TwoX),
        ],
        // The nine highest-power configurations: near-ridge intensities,
        // wide vectors, mostly balanced — with a few waiting variants whose
        // needed power sits below their draw, giving the min-budget case
        // its (small) sharing opportunity.
        MixKind::HighPower => vec![
            cfg(4.0, Ymm, P0, Balanced),
            cfg(8.0, Ymm, P0, Balanced),
            cfg(16.0, Ymm, P0, Balanced),
            cfg(8.0, Ymm, P25, TwoX),
            cfg(8.0, Ymm, P25, ThreeX),
            cfg(4.0, Ymm, P25, TwoX),
            cfg(16.0, Ymm, P25, TwoX),
            cfg(8.0, Ymm, P50, TwoX),
            cfg(4.0, Ymm, P50, TwoX),
        ],
        // Nine draws from a seeded shuffle of the whole configuration
        // space (§V-B: "nine jobs selected from a random shuffle").
        MixKind::RandomLarge => {
            let mut space = Vec::new();
            for &i in &KernelConfig::heatmap_intensities() {
                for v in [Xmm, Ymm] {
                    for w in WaitingFraction::all() {
                        for k in Imbalance::all() {
                            // Waiting without imbalance (and vice versa) is
                            // not in the paper's space except the balanced
                            // 0% column.
                            let valid = (w == P0) == (k == Balanced);
                            if valid {
                                space.push(cfg(i, v, w, k));
                            }
                        }
                    }
                }
            }
            let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
            space.shuffle(&mut rng);
            space.truncate(9);
            space
        }
    };
    WorkloadMix {
        kind,
        jobs: configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| (format!("{kind}-j{i}: {}", c.label()), c, nodes_per_job))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmstack_kernel::KernelLoad;
    use pmstack_simhw::{quartz_spec, PowerModel};

    #[test]
    fn paper_scale_shapes() {
        for kind in MixKind::all() {
            let mix = build(kind);
            assert_eq!(mix.total_nodes(), 900, "{kind}");
            if kind == MixKind::HighImbalance {
                assert_eq!(mix.jobs.len(), 1);
            } else {
                assert_eq!(mix.jobs.len(), 9, "{kind}");
                assert!(mix.jobs.iter().all(|(_, _, n)| *n == 100));
            }
        }
    }

    #[test]
    fn random_mix_is_reproducible() {
        assert_eq!(build(MixKind::RandomLarge), build(MixKind::RandomLarge));
    }

    #[test]
    fn need_used_power_has_no_wasted_watts() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let mix = build(MixKind::NeedUsedPower);
        for (label, config, _) in &mix.jobs {
            let load = KernelLoad::new(*config, model.spec());
            let used = load.used_power(&model, 1.0);
            let needed = load.needed_power(&model, 1.0);
            assert!(
                (used.value() - needed.value()).abs() < 1e-9,
                "{label}: used {used} != needed {needed}"
            );
        }
    }

    #[test]
    fn wasteful_power_has_large_used_needed_gaps() {
        let model = PowerModel::new(quartz_spec()).unwrap();
        let mix = build(MixKind::WastefulPower);
        let gaps: Vec<f64> = mix
            .jobs
            .iter()
            .map(|(_, config, _)| {
                let load = KernelLoad::new(*config, model.spec());
                load.used_power(&model, 1.0).value() - load.needed_power(&model, 1.0).value()
            })
            .collect();
        let wasteful = gaps.iter().filter(|g| **g > 10.0).count();
        assert!(wasteful >= 5, "want >=5 wasteful jobs, gaps {gaps:?}");
    }

    #[test]
    fn high_power_outneeds_low_power() {
        // Uncapped draw is nearly flat across the space (Fig. 4), so the
        // mixes are distinguished by their performance-aware *needed* power
        // — exactly how Table III's ideal budgets separate them.
        let model = PowerModel::new(quartz_spec()).unwrap();
        let avg_needed = |kind| {
            let mix = build(kind);
            let total: f64 = mix
                .jobs
                .iter()
                .map(|(_, c, n)| {
                    KernelLoad::new(*c, model.spec())
                        .needed_power(&model, 1.0)
                        .value()
                        * *n as f64
                })
                .sum();
            total / mix.total_nodes() as f64
        };
        let high = avg_needed(MixKind::HighPower);
        let low = avg_needed(MixKind::LowPower);
        assert!(
            high > low + 15.0,
            "HighPower {high:.1} W vs LowPower {low:.1} W needed"
        );
    }

    #[test]
    fn scaled_mixes_shrink_uniformly() {
        let mix = build_scaled(MixKind::LowPower, 4);
        assert_eq!(mix.total_nodes(), 36);
        let imb = build_scaled(MixKind::HighImbalance, 4);
        assert_eq!(imb.total_nodes(), 36);
    }
}
