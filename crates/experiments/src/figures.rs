//! Generators for Figs. 1–8, each returning the figure as plain text.

use crate::budgets::BudgetLevel;
use crate::grid::EvaluationGrid;
use crate::mixes::MixKind;
use crate::testbed::Testbed;
use pmstack_analysis::render::{heatmap, histogram, table};
use pmstack_analysis::roofline::{Bandwidth, Ceiling, Roofline, RooflinePoint};
use pmstack_analysis::stats::mean;
use pmstack_core::PolicyKind;
use pmstack_kernel::{
    Imbalance, KernelConfig, KernelLoad, PerfModel, VectorWidth, WaitingFraction,
};
use pmstack_simhw::{quartz, quartz_spec, PowerModel};

/// Fig. 1: power usage of the Quartz system over a year, against its
/// 1.35 MW rating.
///
/// The paper's trace is operational data we cannot replay; this generator
/// runs the [`crate::facility`] simulation instead — a seeded job-arrival
/// process scheduled by the `pmstack-rm` FIFO scheduler across the full
/// 2688-node cluster, with per-job power drawn from the kernel
/// configuration space through the same power model as the rest of the
/// stack. The reproduced *property* is the paper's motivation: a system
/// rated at 1.35 MW that actually averages ~0.83 MW — procured power that
/// is never used.
pub fn fig1(seed: u64) -> String {
    let trace = crate::facility::simulate(&crate::facility::FacilityParams {
        seed,
        ..crate::facility::FacilityParams::default()
    });

    let months = [
        "Nov", "Dec", "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
    ];
    let rows: Vec<Vec<String>> = months
        .iter()
        .enumerate()
        .map(|(m, name)| {
            let lo = m * 30;
            let hi = (lo + 30).min(trace.daily_mw.len());
            let days = &trace.daily_mw[lo..hi];
            let util = &trace.daily_utilization[lo..hi];
            vec![
                name.to_string(),
                format!("{:.2}", mean(days)),
                format!("{:.2}", days.iter().copied().fold(0.0, f64::max)),
                format!("{:.0}%", 100.0 * mean(util)),
            ]
        })
        .collect();
    format!(
        "FIG 1: TOTAL POWER CONSUMPTION OF QUARTZ OVER ONE YEAR\n\
         (simulated: {} jobs scheduled across 2688 nodes)\n\n{}\n\
         annual mean {:.2} MW, peak {:.2} MW, rated {:.2} MW\n\
         → {:.0}% of the procured power capacity is unused on average\n",
        trace.jobs_completed,
        table(&["Month", "mean MW", "peak MW", "util"], &rows),
        trace.mean_mw(),
        trace.peak_mw(),
        quartz::SYSTEM_RATED_POWER_MW,
        100.0 * (1.0 - trace.mean_mw() / quartz::SYSTEM_RATED_POWER_MW),
    )
}

/// Fig. 2: the design of the synthetic microbenchmark — one iteration's
/// timeline for a demo configuration, rendered per core class.
pub fn fig2() -> String {
    let spec = quartz_spec();
    let config = KernelConfig::new(8.0, VectorWidth::Ymm, WaitingFraction::P25, Imbalance::TwoX);
    let perf = PerfModel::new(config, &spec);
    let comp = perf.composition();
    let t_iter = perf.iteration_time(spec.f_turbo).value();
    let k = config.imbalance.factor();
    let bar = |compute_frac: f64| -> String {
        let width = 48usize;
        let c = ((compute_frac * width as f64).round() as usize).min(width);
        format!("[{}{}]", "#".repeat(c), ".".repeat(width - c))
    };
    format!(
        "FIG 2: SYNTHETIC MICROBENCHMARK DESIGN ({})\n\n\
         one iteration = {:.3} s; '#' = compute phase, '.' = slack/polling at MPI_Barrier\n\n\
         {:>2} critical ranks (imbalance work)  {}\n\
         {:>2} common ranks   (common work)     {}\n\
         {:>2} waiting ranks  (polling)         {}\n",
        config.label(),
        t_iter,
        comp.critical,
        bar(1.0),
        comp.common,
        bar(1.0 / k),
        comp.waiting,
        bar(0.0),
    )
}

/// The Quartz node roofline used by Fig. 3.
pub fn quartz_roofline() -> Roofline {
    let spec = quartz_spec();
    let cores = spec.cores_used_per_node as f64;
    let ghz = spec.f_turbo.ghz();
    Roofline {
        ceilings: vec![
            Ceiling {
                name: "DP vector FMA peak (ymm)".into(),
                gflops: 16.0 * ghz * cores,
            },
            Ceiling {
                name: "DP vector FMA peak (xmm)".into(),
                gflops: 8.0 * ghz * cores,
            },
            Ceiling {
                name: "DP scalar add peak".into(),
                gflops: 2.0 * ghz * cores,
            },
        ],
        bandwidths: vec![Bandwidth {
            name: "DRAM".into(),
            gb_per_s: spec.dram_bw_bytes_per_s / 1e9,
        }],
    }
}

/// The kernel sweep overlaid on the roofline in Fig. 3.
pub fn fig3_points() -> Vec<RooflinePoint> {
    let spec = quartz_spec();
    let mut points = Vec::new();
    for &i in &[
        0.007, 0.04, 0.1, 0.25, 0.4, 0.7, 1.0, 2.0, 4.0, 7.0, 8.0, 10.0, 16.0, 32.0, 40.0,
    ] {
        for v in VectorWidth::all() {
            let mut config = KernelConfig::balanced_ymm(i);
            config.vector = v;
            let perf = PerfModel::new(config, &spec);
            points.push(RooflinePoint {
                label: config.label(),
                intensity: i,
                gflops: perf.node_flop_rate(spec.f_turbo) / 1e9,
            });
        }
    }
    points
}

/// Fig. 3: the roofline plot of the synthetic kernel.
pub fn fig3() -> String {
    let roof = quartz_roofline();
    let points = fig3_points();
    let rows: Vec<Vec<String>> = points
        .iter()
        .filter(|p| p.label.starts_with("ymm"))
        .map(|p| {
            vec![
                format!("{:.3}", p.intensity),
                format!("{:.1}", p.gflops),
                format!("{:.1}", roof.attainable(p.intensity)),
                format!("{:.0}%", 100.0 * roof.efficiency(p)),
            ]
        })
        .collect();
    let ceilings: String = roof
        .ceilings
        .iter()
        .map(|c| format!("  {}: {:.1} GFLOP/s\n", c.name, c.gflops))
        .collect();
    format!(
        "FIG 3: ROOFLINE OF THE SYNTHETIC KERNEL (ymm sweep, per node)\n\n{}\
         DRAM bandwidth: {:.1} GB/s; ridge at {:.1} F/B\n\n{}\n\
         kernel covers the roofline: {}\n",
        ceilings,
        roof.peak_bandwidth(),
        roof.ridge_intensity(),
        table(
            &["I (F/B)", "achieved GF/s", "attainable GF/s", "efficiency"],
            &rows
        ),
        roof.covered_by(&points, 0.05),
    )
}

/// Shared layout of the Fig. 4 / Fig. 5 heat maps.
fn power_heatmap(title: &str, needed: bool) -> String {
    let spec = quartz_spec();
    let model = PowerModel::new(spec.clone()).expect("quartz spec is valid");
    let col_labels: Vec<String> = KernelConfig::heatmap_columns()
        .iter()
        .map(|(w, k)| {
            if *w == WaitingFraction::P0 {
                "0%".to_string()
            } else {
                format!("{w} at {k}")
            }
        })
        .collect();
    let row_labels: Vec<String> = KernelConfig::heatmap_intensities()
        .iter()
        .map(|i| {
            if *i >= 1.0 {
                format!("{i:.0}")
            } else {
                format!("{i}")
            }
        })
        .collect();
    let values: Vec<Vec<f64>> = KernelConfig::heatmap_intensities()
        .iter()
        .map(|&i| {
            KernelConfig::heatmap_columns()
                .iter()
                .map(|&(w, k)| {
                    let load = KernelLoad::new(KernelConfig::new(i, VectorWidth::Ymm, w, k), &spec);
                    if needed {
                        load.needed_power(&model, 1.0).value()
                    } else {
                        load.used_power(&model, 1.0).value()
                    }
                })
                .collect()
        })
        .collect();
    format!(
        "{title}\n\n{}",
        heatmap("I (F/B)", &col_labels, &row_labels, &values)
    )
}

/// Fig. 4: total CPU power per node, uncapped, under the monitor agent.
pub fn fig4() -> String {
    power_heatmap(
        "FIG 4: UNCAPPED CPU POWER PER NODE (W), ymm, monitor agent",
        false,
    )
}

/// Fig. 5: total CPU power per node under the power balancer agent
/// (the workload's *needed* power).
pub fn fig5() -> String {
    power_heatmap(
        "FIG 5: CPU POWER PER NODE (W) UNDER THE POWER BALANCER, ymm",
        true,
    )
}

/// Fig. 6: achieved frequencies of the screened nodes under a 70 W/socket
/// limit, partitioned by k-means into three clusters.
pub fn fig6(testbed: &Testbed) -> String {
    let k = &testbed.clusters;
    let cluster_lines: String = ["low", "medium", "high"]
        .iter()
        .enumerate()
        .map(|(c, name)| {
            format!(
                "  {name} frequency cluster: n = {:>4}, centroid {:.2} GHz\n",
                k.sizes[c], k.centroids[c]
            )
        })
        .collect();
    format!(
        "FIG 6: ACHIEVED FREQUENCIES OF {} NODES UNDER {} W CPU LIMITS\n\n{}\n{}\
         experiments use the medium (largest) cluster: {} nodes\n",
        testbed.screen_freqs_ghz.len(),
        quartz::VARIATION_SCREEN_CAP_W,
        histogram(&testbed.screen_freqs_ghz, 14, 8),
        cluster_lines,
        testbed.capacity(),
    )
}

/// Bonus figure: continuous budget sweep of one mix (the crossover view
/// the paper's three-point grid cannot show).
pub fn fig_sweep(testbed: &Testbed, mix: MixKind, nodes_per_job: usize, steps: usize) -> String {
    let sweep = crate::sweep::BudgetSweep::run(testbed, mix, nodes_per_job, steps);
    let dynamic = PolicyKind::dynamic();
    let header: Vec<String> = std::iter::once("budget W/node".to_string())
        .chain(
            dynamic
                .iter()
                .flat_map(|p| [format!("{p} time"), format!("{p} energy")]),
        )
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let n: f64 = sweep
        .points
        .first()
        .map(|p| p.budget.value())
        .unwrap_or(1.0)
        / 136.0; // floor point is 136 W/node by construction
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|pt| {
            std::iter::once(format!("{:.0}", pt.budget.value() / n))
                .chain(
                    pt.savings
                        .iter()
                        .flat_map(|(t, e)| [format!("{t:+.1}%"), format!("{e:+.1}%")]),
                )
                .collect()
        })
        .collect();
    format!(
        "BUDGET SWEEP: {mix} — savings vs StaticCaps along the whole budget axis\n\n{}",
        table(&header_refs, &rows)
    )
}

/// Fig. 7: mean power used by each policy as a percentage of the system
/// budget, across mixes and budget levels.
pub fn fig7(grid: &EvaluationGrid) -> String {
    let mut rows = Vec::new();
    for mix in MixKind::all() {
        for level in BudgetLevel::all() {
            let mut row = vec![format!("{mix} @ {level}")];
            for policy in PolicyKind::all() {
                let c = grid.cell(mix, level, policy);
                row.push(format!("{:.0}%", c.pct_of_budget));
            }
            rows.push(row);
        }
    }
    let header: Vec<String> = std::iter::once("Mix @ budget".to_string())
        .chain(PolicyKind::all().iter().map(|p| p.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    format!(
        "FIG 7: MEAN POWER USED, PERCENT OF SYSTEM BUDGET\n\
         (>100% = policy exceeds the budget; <100% = unused headroom)\n\n{}",
        table(&header_refs, &rows)
    )
}

/// Fig. 8: savings relative to StaticCaps for the three dynamic policies,
/// across mixes and budget levels (time / energy / EDP / FLOPS-per-W).
pub fn fig8(grid: &EvaluationGrid) -> String {
    let mut rows = Vec::new();
    for mix in MixKind::all() {
        for level in BudgetLevel::all() {
            for policy in PolicyKind::dynamic() {
                let c = grid.cell(mix, level, policy);
                let s = c.savings.expect("dynamic policies carry savings");
                rows.push(vec![
                    format!("{mix} @ {level}"),
                    policy.to_string(),
                    format!("{:+.1}% ±{:.1}", s.time_pct, s.time_ci),
                    format!("{:+.1}%", s.energy_pct),
                    format!("{:+.1}%", s.edp_pct),
                    format!("{:+.1}%", s.flops_per_watt_pct),
                ]);
            }
        }
    }
    format!(
        "FIG 8: IMPROVEMENT OVER THE StaticCaps BASELINE\n\n{}",
        table(
            &["Mix @ budget", "Policy", "Time", "Energy", "EDP", "FLOPS/W"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{EvaluationGrid, GridParams};

    #[test]
    fn fig1_reproduces_underutilization() {
        let out = fig1(1);
        assert!(out.contains("rated 1.35 MW"));
        // The synthetic trace must show the paper's motivating gap: mean
        // well below the rating.
        let mean_line = out
            .lines()
            .find(|l| l.starts_with("annual mean"))
            .expect("summary line");
        let mean_mw: f64 = mean_line
            .split_whitespace()
            .nth(2)
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (0.70..0.95).contains(&mean_mw),
            "annual mean {mean_mw} MW out of band"
        );
        let peak_mw: f64 = mean_line
            .split_whitespace()
            .nth(5)
            .unwrap()
            .replace(',', "")
            .parse()
            .unwrap();
        assert!(peak_mw <= quartz::SYSTEM_RATED_POWER_MW);
    }

    #[test]
    fn fig2_accounts_every_core() {
        let out = fig2();
        assert!(out.contains("critical ranks"));
        let counts: Vec<usize> = out
            .lines()
            .filter(|l| l.contains("ranks"))
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 34);
    }

    #[test]
    fn fig3_kernel_covers_roofline() {
        assert!(fig3().contains("kernel covers the roofline: true"));
    }

    #[test]
    fn fig4_matches_paper_power_band() {
        let out = fig4();
        // All ymm uncapped powers are in the 200-240 W band of the paper.
        for line in out.lines().skip(4) {
            for tok in line.split_whitespace().skip(1) {
                if let Ok(v) = tok.parse::<f64>() {
                    assert!((195.0..240.0).contains(&v), "cell {v} out of band");
                }
            }
        }
    }

    #[test]
    fn fig5_shows_vertical_bands() {
        // Needed power must decrease along each row as waiting grows.
        let out = fig5();
        let data_rows: Vec<Vec<f64>> = out
            .lines()
            .skip(4)
            .filter_map(|l| {
                let vals: Vec<f64> = l
                    .split_whitespace()
                    .filter_map(|t| t.parse().ok())
                    .collect();
                (vals.len() == 8).then_some(vals)
            })
            .collect();
        assert!(!data_rows.is_empty());
        for row in &data_rows {
            let balanced = row[1];
            let heavy = row[7];
            assert!(
                heavy < balanced,
                "75% waiting ({heavy}) should need less than balanced ({balanced})"
            );
        }
    }

    #[test]
    fn fig6_and_fig7_render() {
        let tb = Testbed::new(400, 7);
        let out6 = fig6(&tb);
        assert!(out6.contains("medium"));
        let grid = EvaluationGrid::run(&tb, GridParams::fast());
        let out7 = fig7(&grid);
        assert!(out7.contains("MixedAdaptive"));
        assert_eq!(out7.lines().filter(|l| l.contains('%')).count(), 19);
        let out8 = fig8(&grid);
        assert!(out8.contains("FLOPS/W"));
    }
}
